"""The §III partitioning primitive.

Given a set of cells and a set of capacitated *targets* (window
regions, subwindows, temporary transit regions, legalization regions),
compute a minimum-movement assignment subject to capacities and
movebound admissibility:

    cost(c, target) = L1 distance,  or +inf when the cell's movebound
    does not cover the target,

solved as an unbalanced transportation problem and rounded to an
almost-integral assignment (at most |targets| - 1 split cells in the
fractional optimum; whole-cell rounding may overflow a target by at
most one cell).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.flows import (
    RELAX_CHAIN_PARTITION,
    TransportResult,
    round_almost_integral,
    solve_transportation_with_relaxation,
)
from repro.geometry import RectSet
from repro.movebounds import DEFAULT_BOUND
from repro.netlist import Netlist
from repro.resilience.errors import InfeasibleInputError


@dataclass
class TransportTargets:
    """The sink side of a partitioning step."""

    keys: List[object]
    capacities: np.ndarray
    areas: List[RectSet]  # for distance evaluation and spreading
    #: admits[j](bound_name) -> bool
    admits: List[Callable[[str], bool]]

    def __post_init__(self) -> None:
        n = len(self.keys)
        if not (
            len(self.capacities) == len(self.areas) == len(self.admits) == n
        ):
            raise InfeasibleInputError(
                "target fields must have equal length",
                stage="partition.targets",
            )


@dataclass
class PartitionOutcome:
    """Assignment of each cell to a target key."""

    feasible: bool
    assignment: Dict[int, object] = field(default_factory=dict)
    cost: float = float("inf")
    overflow: float = 0.0
    relaxed: bool = False


@dataclass
class TransportProblem:
    """The pure-array form of one partitioning step, ready to solve.

    Separating problem construction (needs the netlist) from the solve
    (a pure function of the arrays) lets the parallel window-solver
    pool ship batches of independent problems to worker processes and
    merge results in deterministic order.
    """

    cells: List[int]  # sorted cell indices
    supplies: np.ndarray
    capacities: np.ndarray
    costs: np.ndarray


def build_transport_problem(
    netlist: Netlist,
    cell_indices: Sequence[int],
    targets: TransportTargets,
) -> Optional[TransportProblem]:
    """Assemble supplies/capacities/costs for one partitioning step
    (None when there are no cells to assign)."""
    cells = sorted(cell_indices)
    if not cells:
        return None
    supplies = netlist.cell_sizes()[np.asarray(cells, dtype=np.int64)]
    k = len(targets.keys)
    costs = np.full((len(cells), k), np.inf)
    # one vectorized distance pass per target instead of a Python loop
    # per (cell, target) pair; admissibility is resolved once per
    # distinct movebound name (identical values to the scalar path)
    bound_names = [
        netlist.cells[i].movebound or DEFAULT_BOUND for i in cells
    ]
    xs = np.asarray(netlist.x[cells], dtype=np.float64)
    ys = np.asarray(netlist.y[cells], dtype=np.float64)
    # encode each cell's movebound as an index into the distinct names
    # once; each target then answers admissibility once per distinct
    # name and the per-cell mask is a single vectorized gather
    unique_bounds, codes = np.unique(np.asarray(bound_names), return_inverse=True)
    uniq = [str(b) for b in unique_bounds]
    for j in range(k):
        area = targets.areas[j]
        if area.is_empty:
            continue
        admits_j = targets.admits[j]
        admit_u = np.fromiter(
            (admits_j(b) for b in uniq), dtype=bool, count=len(uniq)
        )
        mask = admit_u[codes]
        if not mask.any():
            continue
        d = area.distances_to_points(xs, ys)
        costs[mask, j] = d[mask]
    return TransportProblem(
        cells, supplies, targets.capacities.astype(float), costs
    )


def complete_partition(
    problem: TransportProblem,
    targets: TransportTargets,
    tr: TransportResult,
    relax_stage: int,
) -> PartitionOutcome:
    """Turn a solved transportation instance into a whole-cell
    assignment (rounding + overflow repair against the *exact*
    capacities)."""
    if not tr.feasible:
        return PartitionOutcome(False)
    supplies, caps, costs = (
        problem.supplies,
        problem.capacities,
        problem.costs,
    )
    assignment, overflow = round_almost_integral(tr, supplies, caps, costs)
    if overflow > 0:
        overflow = _repair_overflow(assignment, supplies, caps, costs)
    out = PartitionOutcome(
        True, {}, tr.cost, overflow, relaxed=relax_stage > 0
    )
    for a, i in enumerate(problem.cells):
        out.assignment[i] = targets.keys[assignment[a]]
    return out


def partition_cells(
    netlist: Netlist,
    cell_indices: Sequence[int],
    targets: TransportTargets,
    relax_on_failure: bool = True,
    method: str = "auto",
    warm_slot=None,
) -> PartitionOutcome:
    """Assign cells to targets minimizing L1 movement under capacities
    and movebound admissibility.

    When the exact instance is infeasible (e.g. rounding debt from an
    earlier step) and ``relax_on_failure`` is set, capacities are
    relaxed by 10 % and then unboundedly, so the caller always gets an
    assignment plus a ``relaxed`` flag instead of an exception.

    ``method`` selects the transportation backend; ``"ns"`` warm-starts
    re-solves along the relaxation chain from the previous basis.  A
    caller re-partitioning the same cell/target sets repeatedly (the
    reflow passes) can pass a persistent ``warm_slot`` so later calls
    start from the previous optimal basis.
    """
    problem = build_transport_problem(netlist, cell_indices, targets)
    if problem is None:
        return PartitionOutcome(True, {}, 0.0)
    chain = RELAX_CHAIN_PARTITION if relax_on_failure else (
        RELAX_CHAIN_PARTITION[:1]
    )
    tr, stage = solve_transportation_with_relaxation(
        problem.supplies,
        problem.capacities,
        problem.costs,
        chain=chain,
        method=method,
        warm_slot=warm_slot,
    )
    return complete_partition(problem, targets, tr, stage)


def _repair_overflow(
    assignment: np.ndarray,
    supplies: np.ndarray,
    caps: np.ndarray,
    costs: np.ndarray,
) -> float:
    """Relocate whole cells out of overfull targets into admissible
    targets with slack, cheapest extra cost first.  Returns the
    remaining maximum overflow (0 when fully repaired)."""
    k = len(caps)
    load = np.zeros(k)
    for a, j in enumerate(assignment):
        load[j] += supplies[a]
    members: Dict[int, List[int]] = {}
    for a, j in enumerate(assignment):
        members.setdefault(int(j), []).append(a)
    for j in range(k):
        guard = 0
        while load[j] > caps[j] + 1e-9 and guard < 10000:
            guard += 1
            best: Optional[Tuple[float, int, int]] = None
            for a in members.get(j, ()):  # candidates to evict
                for t in range(k):
                    if t == j or not np.isfinite(costs[a, t]):
                        continue
                    if load[t] + supplies[a] > caps[t] + 1e-9:
                        continue
                    extra = costs[a, t] - costs[a, j]
                    if best is None or extra < best[0]:
                        best = (extra, a, t)
            if best is None:
                # cascade: make room in some admissible target t by
                # first moving one of t's members elsewhere (default
                # cells crowding a movebound region are the usual case)
                cascade = _find_cascade(
                    j, members, assignment, supplies, caps, costs, load
                )
                if cascade is None:
                    break  # genuinely stuck; leave the overflow
                (m, t_of_m, u), (a, t) = cascade
                assignment[m] = u
                members[t_of_m].remove(m)
                members.setdefault(u, []).append(m)
                load[t_of_m] -= supplies[m]
                load[u] += supplies[m]
                best = (0.0, a, t)
            _extra, a, t = best
            assignment[a] = t
            members[j].remove(a)
            members.setdefault(t, []).append(a)
            load[j] -= supplies[a]
            load[t] += supplies[a]
    return float(np.max(np.maximum(load - caps, 0.0), initial=0.0))


def _find_cascade(
    j: int,
    members: Dict[int, List[int]],
    assignment: np.ndarray,
    supplies: np.ndarray,
    caps: np.ndarray,
    costs: np.ndarray,
    load: np.ndarray,
):
    """Find a two-step repair: member m of target t moves to u (which
    has slack), freeing room in t for a cell a of the overfull j.
    Returns ``((m, t, u), (a, t))`` or None."""
    k = len(caps)
    for a in sorted(members.get(j, ()), key=lambda a: supplies[a]):
        for t in range(k):
            if t == j or not np.isfinite(costs[a, t]):
                continue
            deficit = load[t] + supplies[a] - caps[t]
            if deficit <= 1e-9:
                continue  # direct move possible; handled by caller
            for m in sorted(members.get(t, ()), key=lambda m: supplies[m]):
                if supplies[m] + 1e-9 < deficit:
                    continue
                for u in range(k):
                    if u in (t, j) or not np.isfinite(costs[m, u]):
                        continue
                    if load[u] + supplies[m] <= caps[u] + 1e-9:
                        return ((m, t, u), (a, t))
    return None
