"""Repartitioning / reflow refinement ([5], [17], [27]).

After a partitioning pass, quality can be recovered by revisiting small
blocks of neighboring windows (2x2 or 3x3): run a local QP with outside
cells fixed, then re-run the movebound-aware transportation over the
block's regions.  The paper calls these steps "time-consuming" and
positions FBP as removing the *need* for them — this module exists for
the ablation benchmark quantifying exactly that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.fbp.model import fixed_cell_usage
from repro.fbp.realization import _spread_into_rects
from repro.geometry import RectSet
from repro.grid import Grid
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist
from repro.partitioning.transport import TransportTargets, partition_cells
from repro.qp import QPOptions, solve_qp


@dataclass
class RepartitionReport:
    blocks_processed: int = 0
    blocks_improved: int = 0
    hpwl_before: float = 0.0
    hpwl_after: float = 0.0


def repartition_pass(
    netlist: Netlist,
    bounds: MoveBoundSet,
    grid: Grid,
    density_target: float = 1.0,
    block_size: int = 2,
    qp_options: Optional[QPOptions] = None,
    run_local_qp: bool = True,
    cell_limit: int = 800,
) -> RepartitionReport:
    """Sweep block_size x block_size window blocks; within each block,
    locally re-QP and re-partition the block's cells.  Reverts a block
    when the step did not improve HPWL."""
    report = RepartitionReport(hpwl_before=netlist.hpwl())
    usage = fixed_cell_usage(netlist, grid)
    qp_opts = qp_options or QPOptions()

    nets_of_cell: Dict[int, List[int]] = {}
    for nidx, net in enumerate(netlist.nets):
        for pin in net.pins:
            if pin.cell_index >= 0:
                nets_of_cell.setdefault(pin.cell_index, []).append(nidx)

    cell_window = grid.assign_cells(netlist)
    window_cells: Dict[int, List[int]] = {}
    for cell in netlist.cells:
        if not cell.fixed:
            window_cells.setdefault(int(cell_window[cell.index]), []).append(
                cell.index
            )

    for by in range(0, grid.ny, block_size):
        for bx in range(0, grid.nx, block_size):
            block = [
                grid.window(ix, iy)
                for iy in range(by, min(by + block_size, grid.ny))
                for ix in range(bx, min(bx + block_size, grid.nx))
            ]
            cells: List[int] = []
            for w in block:
                cells.extend(window_cells.get(w.index, ()))
            if not cells or len(cells) > cell_limit:
                continue
            report.blocks_processed += 1
            snapshot = netlist.snapshot()
            before = netlist.hpwl()

            if run_local_qp:
                mask = np.zeros(netlist.num_cells, dtype=bool)
                mask[cells] = True
                net_ids: Set[int] = set()
                for c in cells:
                    net_ids.update(nets_of_cell.get(c, ()))
                solve_qp(
                    netlist,
                    qp_opts,
                    movable_mask=mask,
                    nets=[netlist.nets[i] for i in sorted(net_ids)],
                )

            keys: List[object] = []
            caps: List[float] = []
            areas: List[RectSet] = []
            admits = []
            for w in block:
                for wr in w.regions:
                    cap = wr.capacity(density_target) - usage.get(
                        (w.index, wr.region.index), 0.0
                    )
                    if cap <= 0:
                        continue
                    keys.append((w.index, wr))
                    caps.append(cap)
                    areas.append(
                        wr.free_area if not wr.free_area.is_empty else wr.area
                    )
                    admits.append(wr.admits)
            if not keys:
                netlist.restore(snapshot)
                continue
            outcome = partition_cells(
                netlist, cells, TransportTargets(keys, np.array(caps), areas, admits)
            )
            if not outcome.feasible:
                netlist.restore(snapshot)
                continue
            groups: Dict[int, List[int]] = {}
            key_of: Dict[int, tuple] = {}
            for cell, key in outcome.assignment.items():
                groups.setdefault(id(key), []).append(cell)
                key_of[id(key)] = key
            for gid, group in groups.items():
                _w, wr = key_of[gid]
                rects = list(
                    wr.free_area if not wr.free_area.is_empty else wr.area
                )
                _spread_into_rects(netlist, group, rects)
            netlist.clamp_into_die()
            after = netlist.hpwl()
            if after < before:
                report.blocks_improved += 1
                for cell, key in outcome.assignment.items():
                    widx, _wr = key
                    if int(cell_window[cell]) != widx:
                        window_cells[int(cell_window[cell])].remove(cell)
                        window_cells.setdefault(widx, []).append(cell)
                        cell_window[cell] = widx
            else:
                netlist.restore(snapshot)

    report.hpwl_after = netlist.hpwl()
    return report
