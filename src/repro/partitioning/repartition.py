"""Repartitioning / reflow refinement ([5], [17], [27]).

After a partitioning pass, quality can be recovered by revisiting small
blocks of neighboring windows (2x2 or 3x3): run a local QP with outside
cells fixed, then re-run the movebound-aware transportation over the
block's regions.  The paper calls these steps "time-consuming" and
positions FBP as removing the *need* for them — this module exists for
the ablation benchmark quantifying exactly that trade-off.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.fbp.model import fixed_cell_usage
from repro.fbp.realization import _spread_into_rects
from repro.flows.warmstart import WarmStartSlot
from repro.obs import incr
from repro.geometry import RectSet
from repro.grid import Grid
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist
from repro.partitioning.transport import TransportTargets, partition_cells
from repro.qp import QPOptions, solve_qp


@dataclass
class RepartitionReport:
    blocks_processed: int = 0
    blocks_improved: int = 0
    hpwl_before: float = 0.0
    hpwl_after: float = 0.0


def repartition_pass(
    netlist: Netlist,
    bounds: MoveBoundSet,
    grid: Grid,
    density_target: float = 1.0,
    block_size: int = 2,
    qp_options: Optional[QPOptions] = None,
    run_local_qp: bool = True,
    cell_limit: int = 800,
    transport_method: str = "auto",
    warm_slots: Optional[Dict] = None,
) -> RepartitionReport:
    """Sweep block_size x block_size window blocks; within each block,
    locally re-QP and re-partition the block's cells.  Reverts a block
    when the step did not improve HPWL.

    ``warm_slots`` is an optional dict owned by the caller, keyed per
    block; passing the same dict across passes lets the ``ns`` backend
    warm-start each block's transportation solve from the previous
    pass's basis (reverted blocks re-solve an identical instance, so
    the warm basis is already optimal)."""
    report = RepartitionReport(hpwl_before=netlist.hpwl())
    # threaded HPWL: a block either keeps its improved placement (its
    # ``after`` is the new current value) or restores the byte-equal
    # snapshot (the value is unchanged), so each block's ``before`` is
    # the running value — recomputing it would yield identical bits
    current_hpwl = report.hpwl_before
    usage = fixed_cell_usage(netlist, grid)
    qp_opts = qp_options or QPOptions()

    cn_start, cn_ids = netlist.cell_nets_csr()

    cell_window = grid.assign_cells(netlist)
    # grouped with one stable argsort over the movable cells: ascending
    # cell index within each window, exactly the order a scan over
    # netlist.cells would append them in
    window_cells: Dict[int, List[int]] = {}
    movable = np.nonzero(~netlist.fixed_mask)[0]
    if len(movable):
        wins = cell_window[movable]
        order = np.argsort(wins, kind="stable")
        sw = wins[order]
        sc = movable[order]
        starts = np.nonzero(np.r_[True, sw[1:] != sw[:-1]])[0]
        ends = np.r_[starts[1:], len(sw)]
        for s, e in zip(starts.tolist(), ends.tolist()):
            window_cells[int(sw[s])] = sc[s:e].tolist()

    for by in range(0, grid.ny, block_size):
        for bx in range(0, grid.nx, block_size):
            block = [
                grid.window(ix, iy)
                for iy in range(by, min(by + block_size, grid.ny))
                for ix in range(bx, min(bx + block_size, grid.nx))
            ]
            cells: List[int] = []
            for w in block:
                cells.extend(window_cells.get(w.index, ()))
            if not cells or len(cells) > cell_limit:
                continue
            report.blocks_processed += 1
            snapshot = netlist.snapshot()
            before = current_hpwl

            if run_local_qp:
                mask = np.zeros(netlist.num_cells, dtype=bool)
                mask[cells] = True
                ci = np.asarray(cells, dtype=np.int64)
                counts = cn_start[ci + 1] - cn_start[ci]
                gather = np.repeat(
                    cn_start[ci] - (np.cumsum(counts) - counts), counts
                ) + np.arange(int(counts.sum()))
                net_ids = np.unique(cn_ids[gather])
                local_nets = [netlist.nets[i] for i in net_ids.tolist()]
                flat = netlist.net_subset_arrays(net_ids)
                # exact-instance memo for the local QP: its output is a
                # pure function of the block cells and the positions of
                # every cell on their nets, so a block whose
                # neighborhood did not move since the previous pass
                # (the common reverted-block case) reuses the stored
                # solution bit-for-bit
                digest = None
                if warm_slots is not None:
                    # cells on the block's degree>=2 nets; pins of the
                    # block's degree<2 nets sit on block cells already
                    pc = flat[1]
                    inv = np.unique(np.concatenate([ci, pc[pc >= 0]]))
                    h = hashlib.sha256()
                    h.update(np.asarray(cells, dtype=np.int64).tobytes())
                    h.update(inv.tobytes())
                    h.update(np.ascontiguousarray(netlist.x[inv]).tobytes())
                    h.update(np.ascontiguousarray(netlist.y[inv]).tobytes())
                    digest = h.digest()
                qp_key = ("qp", grid.nx, grid.ny, bx, by)
                memo = (
                    warm_slots.get(qp_key) if warm_slots is not None else None
                )
                if memo is not None and memo[0] == digest:
                    netlist.x[cells] = memo[1]
                    netlist.y[cells] = memo[2]
                    incr("warmstart.block_qp_hits")
                else:
                    solve_qp(
                        netlist,
                        qp_opts,
                        movable_mask=mask,
                        nets=local_nets,
                        flat=flat,
                    )
                    if digest is not None:
                        warm_slots[qp_key] = (
                            digest,
                            netlist.x[cells].copy(),
                            netlist.y[cells].copy(),
                        )

            keys: List[object] = []
            caps: List[float] = []
            areas: List[RectSet] = []
            admits = []
            for w in block:
                for wr in w.regions:
                    cap = wr.capacity(density_target) - usage.get(
                        (w.index, wr.region.index), 0.0
                    )
                    if cap <= 0:
                        continue
                    keys.append((w.index, wr))
                    caps.append(cap)
                    areas.append(
                        wr.free_area if not wr.free_area.is_empty else wr.area
                    )
                    admits.append(wr.admits)
            if not keys:
                netlist.restore(snapshot)
                continue
            slot = None
            if warm_slots is not None:
                slot = warm_slots.setdefault(
                    (grid.nx, grid.ny, bx, by), WarmStartSlot()
                )
            outcome = partition_cells(
                netlist,
                cells,
                TransportTargets(keys, np.array(caps), areas, admits),
                method=transport_method,
                warm_slot=slot,
            )
            if not outcome.feasible:
                netlist.restore(snapshot)
                continue
            groups: Dict[int, List[int]] = {}
            key_of: Dict[int, tuple] = {}
            for cell, key in outcome.assignment.items():
                groups.setdefault(id(key), []).append(cell)
                key_of[id(key)] = key
            for gid, group in groups.items():
                _w, wr = key_of[gid]
                rects = list(
                    wr.free_area if not wr.free_area.is_empty else wr.area
                )
                _spread_into_rects(netlist, group, rects)
            netlist.clamp_into_die()
            after = netlist.hpwl()
            if after < before:
                current_hpwl = after
                report.blocks_improved += 1
                for cell, key in outcome.assignment.items():
                    widx, _wr = key
                    if int(cell_window[cell]) != widx:
                        window_cells[int(cell_window[cell])].remove(cell)
                        window_cells.setdefault(widx, []).append(cell)
                        cell_window[cell] = widx
            else:
                netlist.restore(snapshot)

    report.hpwl_after = netlist.hpwl()
    return report


def enforce_blocks(
    netlist: Netlist,
    bounds: MoveBoundSet,
    grid: Grid,
    blocks,
    density_target: float = 1.0,
    block_size: int = 2,
    qp_options: Optional[QPOptions] = None,
    run_local_qp: bool = True,
    cell_limit: int = 800,
    transport_method: str = "auto",
    warm_slots: Optional[Dict] = None,
) -> bool:
    """Frontier repair for the incremental re-place (:mod:`repro.eco`):
    re-run the movebound-aware block transportation over the given
    ``(bx, by)`` block origins ONLY, always accepting a feasible
    assignment.  Unlike :func:`repartition_pass` there is no HPWL gate
    and no revert — the blocks hold cells whose movebounds just
    changed, so the current assignment may be inadmissible and keeping
    it is not an option.  Returns False when any block's transportation
    is infeasible or capacity-free; the caller degrades to the full
    multilevel solve.
    """
    usage = fixed_cell_usage(netlist, grid)
    qp_opts = qp_options or QPOptions()
    cn_start, cn_ids = netlist.cell_nets_csr()

    cell_window = grid.assign_cells(netlist)
    window_cells: Dict[int, List[int]] = {}
    movable = np.nonzero(~netlist.fixed_mask)[0]
    if len(movable):
        wins = cell_window[movable]
        order = np.argsort(wins, kind="stable")
        sw = wins[order]
        sc = movable[order]
        starts = np.nonzero(np.r_[True, sw[1:] != sw[:-1]])[0]
        ends = np.r_[starts[1:], len(sw)]
        for s, e in zip(starts.tolist(), ends.tolist()):
            window_cells[int(sw[s])] = sc[s:e].tolist()

    processed = 0
    for bx, by in sorted(blocks):
        block = [
            grid.window(ix, iy)
            for iy in range(by, min(by + block_size, grid.ny))
            for ix in range(bx, min(bx + block_size, grid.nx))
        ]
        cells: List[int] = []
        for w in block:
            cells.extend(window_cells.get(w.index, ()))
        if not cells:
            continue
        processed += 1

        if run_local_qp and len(cells) <= cell_limit:
            mask = np.zeros(netlist.num_cells, dtype=bool)
            mask[cells] = True
            ci = np.asarray(cells, dtype=np.int64)
            counts = cn_start[ci + 1] - cn_start[ci]
            gather = np.repeat(
                cn_start[ci] - (np.cumsum(counts) - counts), counts
            ) + np.arange(int(counts.sum()))
            net_ids = np.unique(cn_ids[gather])
            local_nets = [netlist.nets[i] for i in net_ids.tolist()]
            flat = netlist.net_subset_arrays(net_ids)
            solve_qp(
                netlist,
                qp_opts,
                movable_mask=mask,
                nets=local_nets,
                flat=flat,
            )

        keys: List[object] = []
        caps: List[float] = []
        areas: List[RectSet] = []
        admits = []
        for w in block:
            for wr in w.regions:
                cap = wr.capacity(density_target) - usage.get(
                    (w.index, wr.region.index), 0.0
                )
                if cap <= 0:
                    continue
                keys.append((w.index, wr))
                caps.append(cap)
                areas.append(
                    wr.free_area if not wr.free_area.is_empty else wr.area
                )
                admits.append(wr.admits)
        if not keys:
            return False
        slot = None
        if warm_slots is not None:
            slot = warm_slots.setdefault(
                (grid.nx, grid.ny, bx, by), WarmStartSlot()
            )
        outcome = partition_cells(
            netlist,
            cells,
            TransportTargets(keys, np.array(caps), areas, admits),
            method=transport_method,
            warm_slot=slot,
        )
        if not outcome.feasible:
            return False
        groups: Dict[int, List[int]] = {}
        key_of: Dict[int, tuple] = {}
        for cell, key in outcome.assignment.items():
            groups.setdefault(id(key), []).append(cell)
            key_of[id(key)] = key
        for gid, group in groups.items():
            _w, wr = key_of[gid]
            rects = list(
                wr.free_area if not wr.free_area.is_empty else wr.area
            )
            _spread_into_rects(netlist, group, rects)

    netlist.clamp_into_die()
    incr("repartition.blocks_enforced", processed)
    return True
