"""Recursive partitioning — the classical BonnPlace scheme [5].

Each level splits every window into 2x2 subwindows and solves, *per
window and independently*, a transportation problem assigning the
window's cells to the subwindows' regions.  This is the approach whose
drawbacks motivate FBP (paper §IV): decisions are local, and a window
can become infeasible (no valid split exists for its own cells) even
though the global instance is feasible — recursion then has to relax
capacities.  The report counts these local failures so the ablation
benchmark can show them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.flows import RELAX_CHAIN_PARTITION
from repro.geometry import Rect, RectSet
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, RegionDecomposition
from repro.partitioning.transport import (
    TransportTargets,
    build_transport_problem,
    complete_partition,
)
from repro.fbp.realization import _spread_into_rects
from repro.fbp.model import fixed_cell_usage
from repro.netlist import Netlist


@dataclass
class RecursivePartitionReport:
    """Accounting of one full recursive partitioning run."""

    levels: int = 0
    windows_processed: int = 0
    local_infeasibilities: int = 0
    relaxations: int = 0
    final_assignment: Dict[int, Tuple[int, int]] = field(default_factory=dict)


def recursive_partition(
    netlist: Netlist,
    bounds: MoveBoundSet,
    decomposition: RegionDecomposition,
    max_level: int,
    density_target: float = 1.0,
) -> RecursivePartitionReport:
    """Recursively partition cells down to a 2^max_level grid.

    At each level the grid doubles; every parent window's cells are
    distributed among the regions of its 4 children by the §III
    transportation step with movebound costs, then spread into their
    assigned region pieces.  Purely local — no flow between sibling
    windows — which is exactly the limitation FBP removes.
    """
    report = RecursivePartitionReport()
    die = netlist.die
    # cell -> current window (ix, iy) at the current level
    assignment: Dict[int, Tuple[int, int]] = {
        c.index: (0, 0) for c in netlist.cells if not c.fixed
    }

    for level in range(1, max_level + 1):
        n = 2**level
        grid = Grid(die, n, n)
        grid.build_regions(decomposition)
        usage = fixed_cell_usage(netlist, grid)
        report.levels = level

        # group cells by parent window
        parents: Dict[Tuple[int, int], List[int]] = {}
        for cell, (ix, iy) in assignment.items():
            parents.setdefault((ix, iy), []).append(cell)

        # The per-parent-window solves are independent (each parent
        # owns a disjoint cell set, and costs only involve the parent's
        # own cells): build every problem first, solve them as a batch
        # — through the supervised worker pool when one is active —
        # then round/spread in deterministic parent order.  Identical
        # to the former solve-as-you-go loop, just batched.
        from repro.runstate.pool import solve_transport_batch

        batch: List[tuple] = []  # (cells, targets, problem)
        tasks: List[tuple] = []
        for (pix, piy), cells in sorted(parents.items()):
            report.windows_processed += 1
            children = [
                grid.window(2 * pix + dx, 2 * piy + dy)
                for dy in (0, 1)
                for dx in (0, 1)
            ]
            keys: List[object] = []
            caps: List[float] = []
            areas: List[RectSet] = []
            admits = []
            for child in children:
                for wr in child.regions:
                    cap = wr.capacity(density_target) - usage.get(
                        (child.index, wr.region.index), 0.0
                    )
                    if cap <= 0:
                        continue
                    keys.append((child.ix, child.iy, wr))
                    caps.append(cap)
                    areas.append(
                        wr.free_area if not wr.free_area.is_empty else wr.area
                    )
                    admits.append(wr.admits)
            targets = TransportTargets(
                keys, np.array(caps), areas, admits
            )
            problem = build_transport_problem(netlist, cells, targets)
            if problem is None:
                continue
            batch.append((targets, problem))
            tasks.append(
                (problem.supplies, problem.capacities, problem.costs)
            )

        solved = solve_transport_batch(tasks, chain=RELAX_CHAIN_PARTITION)

        new_assignment: Dict[int, Tuple[int, int]] = {}
        for (targets, problem), (tr, stage) in zip(batch, solved):
            outcome = complete_partition(problem, targets, tr, stage)
            if not outcome.feasible:
                report.local_infeasibilities += 1
                continue
            if outcome.relaxed:
                report.relaxations += 1
            groups: Dict[int, List[int]] = {}
            key_of_group: Dict[int, tuple] = {}
            for cell, key in outcome.assignment.items():
                cix, ciy, _wr = key
                new_assignment[cell] = (cix, ciy)
                groups.setdefault(id(key), []).append(cell)
                key_of_group[id(key)] = key

            # spread each group into its assigned region pieces
            for gid, group in groups.items():
                _cix, _ciy, wr = key_of_group[gid]
                rects = list(
                    wr.free_area if not wr.free_area.is_empty else wr.area
                )
                _spread_into_rects(netlist, group, rects)
        assignment = new_assignment

    netlist.clamp_into_die()
    final_grid = Grid(die, 2**max_level, 2**max_level)
    for cell, (ix, iy) in assignment.items():
        report.final_assignment[cell] = (ix, iy)
    return report
