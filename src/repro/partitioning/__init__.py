"""Partitioning algorithms besides FBP.

* :mod:`repro.partitioning.transport` — the shared §III primitive:
  movebound-aware transportation of a cell set onto capacitated
  targets, with almost-integral rounding.
* :mod:`repro.partitioning.recursive` — the classical recursive
  2x2 partitioning of BonnPlace [5] (the paper's predecessor and our
  ablation baseline), including the drawback the paper highlights:
  subdivision can fail locally even when a global solution exists.
* :mod:`repro.partitioning.repartition` — 2x2/3x3 window *reflow*
  refinement ([17], [5], [27]).
"""

from repro.partitioning.transport import (
    TransportProblem,
    TransportTargets,
    build_transport_problem,
    complete_partition,
    partition_cells,
)
from repro.partitioning.recursive import RecursivePartitionReport, recursive_partition
from repro.partitioning.repartition import enforce_blocks, repartition_pass

__all__ = [
    "enforce_blocks",
    "TransportTargets",
    "TransportProblem",
    "build_transport_problem",
    "complete_partition",
    "partition_cells",
    "RecursivePartitionReport",
    "recursive_partition",
    "repartition_pass",
]
