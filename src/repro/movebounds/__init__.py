"""Movebounds: position constraints on subsets of cells (paper §II).

A movebound is a pair ``(A(M), xi(M))`` of a rectilinear area (finite
union of rectangles) and a kind flag:

* **inclusive** — cells mapped to M must lie inside A(M); other cells
  may share the area.
* **exclusive** — additionally, A(M) is a blockage for every other cell.

This package implements the formalism, the input normalization the
paper assumes (no exclusive movebound overlaps any other movebound),
and the **region decomposition** of Definition 2 / Lemma 1: a partition
of the chip area into movebound-pure regions via the Hanan grid, merged
to maximal regions as in Figure 1.
"""

from repro.movebounds.bounds import (
    DEFAULT_BOUND,
    EXCLUSIVE,
    INCLUSIVE,
    MoveBound,
    MoveBoundSet,
)
from repro.movebounds.regions import Region, RegionDecomposition, decompose_regions

__all__ = [
    "MoveBound",
    "MoveBoundSet",
    "INCLUSIVE",
    "EXCLUSIVE",
    "DEFAULT_BOUND",
    "Region",
    "RegionDecomposition",
    "decompose_regions",
]
