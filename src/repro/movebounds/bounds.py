"""MoveBound and MoveBoundSet (paper §II, Definition 1).

The set container also materializes the *default movebound*: cells
without an explicit movebound behave as if bound to the whole chip area
minus every exclusive area (exclusive movebounds are blockages to all
other cells).  Materializing this makes every downstream algorithm
uniform — every cell has exactly one movebound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.geometry import Rect, RectSet
from repro.netlist import Netlist

INCLUSIVE = "inclusive"
EXCLUSIVE = "exclusive"

#: Name of the implicit movebound of unconstrained cells.
DEFAULT_BOUND = "__default__"


@dataclass
class MoveBound:
    """A movebound ``M = (A(M), xi(M))``.

    ``area`` may be non-convex and may overlap other movebounds' areas
    (for inclusive bounds).  ``kind`` is ``"inclusive"`` or
    ``"exclusive"``.
    """

    name: str
    area: RectSet
    kind: str = INCLUSIVE

    def __post_init__(self) -> None:
        if self.kind not in (INCLUSIVE, EXCLUSIVE):
            raise ValueError(f"unknown movebound kind {self.kind!r}")
        if self.area.is_empty and self.name != DEFAULT_BOUND:
            # lazy import: repro.resilience pulls in modules that
            # import repro.movebounds back
            from repro.resilience.errors import InfeasibleInputError

            raise InfeasibleInputError(
                f"movebound {self.name!r} has empty area",
                stage="movebounds",
            )

    @property
    def is_exclusive(self) -> bool:
        return self.kind == EXCLUSIVE

    def covers(self, rect: Rect) -> bool:
        """True when `rect` lies entirely inside A(M) (paper: M covers r)."""
        return self.area.contains_rect(rect)

    def contains_point(self, x: float, y: float) -> bool:
        return self.area.contains_point(x, y)

    def __repr__(self) -> str:
        return f"MoveBound({self.name!r}, {self.kind}, rects={len(self.area)})"


class MoveBoundSet:
    """All movebounds of an instance, plus the implicit default bound.

    Construction normalizes the input per the paper's assumption: no
    exclusive movebound may overlap any other movebound.  Overlaps of an
    exclusive bound with an inclusive one are repaired by subtracting
    the exclusive area from the inclusive area ("detected and modified
    at the input"); overlapping exclusive bounds are an input error.
    """

    def __init__(self, die: Rect, bounds: Iterable[MoveBound] = ()) -> None:
        self.die = die
        self._bounds: Dict[str, MoveBound] = {}
        for b in bounds:
            self.add(b)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, bound: MoveBound) -> None:
        if bound.name in self._bounds or bound.name == DEFAULT_BOUND:
            raise ValueError(f"duplicate movebound name {bound.name!r}")
        for rect in bound.area:
            if not self.die.contains_rect(rect):
                from repro.resilience.errors import InfeasibleInputError

                raise InfeasibleInputError(
                    f"movebound {bound.name!r} rectangle {rect} leaves the die",
                    stage="movebounds",
                )
        self._bounds[bound.name] = bound

    def add_rects(
        self, name: str, rects: Iterable[Rect], kind: str = INCLUSIVE
    ) -> MoveBound:
        bound = MoveBound(name, RectSet(rects), kind)
        self.add(bound)
        return bound

    def normalize(self) -> None:
        """Enforce the paper's no-exclusive-overlap assumption.

        Exclusive ∩ exclusive overlap raises; exclusive ∩ inclusive
        overlap is repaired by carving the exclusive area out of the
        inclusive one.  An inclusive bound whose area disappears
        entirely raises, since its cells would have nowhere to go.
        """
        exclusives = [b for b in self._bounds.values() if b.is_exclusive]
        for i, a in enumerate(exclusives):
            for b in exclusives[i + 1 :]:
                if not a.area.intersect(b.area).is_empty:
                    raise ValueError(
                        f"exclusive movebounds {a.name!r} and {b.name!r} overlap"
                    )
        for excl in exclusives:
            for bound in self._bounds.values():
                if bound.is_exclusive or bound is excl:
                    continue
                if not bound.area.intersect(excl.area).is_empty:
                    reduced = bound.area.subtract(excl.area)
                    if reduced.is_empty:
                        raise ValueError(
                            f"inclusive movebound {bound.name!r} is entirely "
                            f"covered by exclusive {excl.name!r}"
                        )
                    bound.area = reduced

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._bounds)

    def __iter__(self) -> Iterator[MoveBound]:
        return iter(self._bounds.values())

    def __contains__(self, name: str) -> bool:
        return name in self._bounds or name == DEFAULT_BOUND

    def names(self) -> List[str]:
        return list(self._bounds)

    def get(self, name: str) -> MoveBound:
        if name == DEFAULT_BOUND:
            return self.default_bound()
        return self._bounds[name]

    def exclusive_area(self) -> RectSet:
        """Union of all exclusive areas (blockage for default cells)."""
        area = RectSet()
        for b in self._bounds.values():
            if b.is_exclusive:
                area = area.union(b.area)
        return area

    def default_bound(self) -> MoveBound:
        """The implicit movebound of unconstrained cells: the die minus
        all exclusive areas."""
        area = RectSet([self.die]).subtract(self.exclusive_area())
        return MoveBound(DEFAULT_BOUND, area, INCLUSIVE)

    def all_bounds(self) -> List[MoveBound]:
        """Explicit movebounds plus the default bound, default last."""
        return list(self._bounds.values()) + [self.default_bound()]

    def bound_of(self, netlist: Netlist, cell_index: int) -> MoveBound:
        """The movebound governing a cell (default if unconstrained)."""
        name = netlist.cells[cell_index].movebound
        if name is None:
            return self.default_bound()
        if name not in self._bounds:
            raise KeyError(
                f"cell {netlist.cells[cell_index].name!r} references "
                f"unknown movebound {name!r}"
            )
        return self._bounds[name]

    def encoding_rects(self) -> List[Rect]:
        """All rectangles encoding the movebounds (the ``l`` of Lemma 1)."""
        rects: List[Rect] = []
        for b in self._bounds.values():
            rects.extend(b.area)
        return rects

    def violations(self, netlist: Netlist, tol: float = 1e-9) -> List[int]:
        """Indices of cells violating their movebound in the current
        placement (containment for own bound, exclusion for foreign
        exclusive bounds).

        Vectorized per movebound group: coverage accumulates one bound
        rectangle at a time across all group cells, the same float-sum
        order ``RectSet.contains_rect`` uses per cell.
        """
        movable, hw, hh = netlist._dim_arrays()
        if not movable.any():
            return []
        default = self.default_bound()
        groups: Dict[Optional[str], List[int]] = {}
        for i in np.nonzero(movable)[0].tolist():
            groups.setdefault(netlist.cells[i].movebound, []).append(i)
        bad = np.zeros(netlist.num_cells, dtype=bool)
        for name, members in groups.items():
            ci = np.asarray(members, dtype=np.int64)
            bound = default if name is None else self._bounds[name]
            xl = netlist.x[ci] - hw[ci]
            xh = netlist.x[ci] + hw[ci]
            yl = netlist.y[ci] - hh[ci]
            yh = netlist.y[ci] + hh[ci]
            area = (xh - xl) * (yh - yl)
            cov = np.zeros(len(ci))
            for r in bound.area:
                w = np.minimum(xh, r.x_hi) - np.maximum(xl, r.x_lo)
                d = np.minimum(yh, r.y_hi) - np.maximum(yl, r.y_lo)
                cov += np.where((w > 0) & (d > 0), w * d, 0.0)
            grp_bad = cov < area - 1e-9 * np.maximum(area, 1.0)
            # exclusion from foreign exclusive bounds
            thresh = tol * np.maximum(area, 1.0)
            for other in self._bounds.values():
                if other.name == name or not other.is_exclusive:
                    continue
                for r in other.area:
                    w = np.minimum(xh, r.x_hi) - np.maximum(xl, r.x_lo)
                    d = np.minimum(yh, r.y_hi) - np.maximum(yl, r.y_lo)
                    grp_bad |= (w > 0) & (d > 0) & (w * d > thresh)
            bad[ci] = grp_bad
        return np.nonzero(bad)[0].tolist()

    def __repr__(self) -> str:
        kinds = ", ".join(
            f"{b.name}:{b.kind[0]}" for b in self._bounds.values()
        )
        return f"MoveBoundSet({len(self)} bounds: {kinds})"
