"""Region decomposition (paper §II, Definition 2, Lemma 1, Figure 1).

A *region* is a set of non-overlapping rectangles such that for every
movebound M the region is either entirely inside A(M) or disjoint from
it ("movebound-pure").  The decomposition here follows Lemma 1: the
Hanan grid induced by the rectangles encoding all movebounds tiles the
chip into O(l^2) pure rectangles; grid cells with identical *signature*
(the set of movebounds covering them) are then merged into maximal
regions as in Figure 1.

The implicit default movebound (chip minus exclusive areas) takes part
in the signature so that unconstrained cells can be routed through the
same machinery as movebounded ones.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.geometry import Rect, RectSet
from repro.geometry.hanan import hanan_coordinates
from repro.movebounds.bounds import MoveBoundSet


@dataclass
class Region:
    """A maximal movebound-pure region.

    Attributes
    ----------
    signature:
        Names of all movebounds covering the region (including the
        default bound when unconstrained cells may use it).
    area:
        The full geometric area of the region.
    free_area:
        ``area`` minus placement blockages — the space actually
        available to cells.
    """

    index: int
    signature: FrozenSet[str]
    area: RectSet
    free_area: RectSet

    def capacity(self, density_target: float = 1.0) -> float:
        """capa(r): usable space, respecting blockages and density."""
        return self.free_area.area * density_target

    def centroid(self) -> Tuple[float, float]:
        """Center of gravity of the free area (falls back to the
        geometric area when fully blocked)."""
        if not self.free_area.is_empty and self.free_area.area > 0:
            return self.free_area.centroid()
        return self.area.centroid()

    def admits(self, bound_name: str) -> bool:
        """True when cells of the given movebound may occupy the region."""
        return bound_name in self.signature

    def __repr__(self) -> str:
        sig = ",".join(sorted(self.signature))
        return f"Region(#{self.index} [{sig}] area={self.area.area:.1f})"


class RegionDecomposition:
    """The set of maximal regions of an instance, with lookup helpers."""

    def __init__(
        self,
        die: Rect,
        bounds: MoveBoundSet,
        regions: List[Region],
    ) -> None:
        self.die = die
        self.bounds = bounds
        self.regions = regions
        self._by_signature: Dict[FrozenSet[str], Region] = {
            r.signature: r for r in regions
        }

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self):
        return iter(self.regions)

    def by_signature(self, signature: FrozenSet[str]) -> Optional[Region]:
        return self._by_signature.get(signature)

    def covering(self, bound_name: str) -> List[Region]:
        """All regions that cells of `bound_name` may occupy."""
        return [r for r in self.regions if r.admits(bound_name)]

    def region_at(self, x: float, y: float) -> Optional[Region]:
        for r in self.regions:
            if r.area.contains_point(x, y):
                return r
        return None

    def total_capacity(self, density_target: float = 1.0) -> float:
        return sum(r.capacity(density_target) for r in self.regions)

    def check_partition(self, tol: float = 1e-6) -> None:
        """Verify the regions tile the die exactly (tested invariant)."""
        total = sum(r.area.area for r in self.regions)
        if abs(total - self.die.area) > tol * max(self.die.area, 1.0):
            raise AssertionError(
                f"regions cover {total}, die area is {self.die.area}"
            )
        for i, a in enumerate(self.regions):
            for b in self.regions[i + 1 :]:
                if not a.area.intersect(b.area).is_empty:
                    raise AssertionError(
                        f"regions {a.index} and {b.index} overlap"
                    )

    def __repr__(self) -> str:
        return f"RegionDecomposition({len(self.regions)} regions)"


def _covered_cell_mask(
    xs: List[float],
    ys: List[float],
    area: RectSet,
) -> List[List[bool]]:
    """For a Hanan grid, mark which grid cells lie inside `area`.

    Because the grid contains every rectangle edge of every movebound,
    each grid cell is entirely inside or outside each rectangle, so a
    per-rectangle index-range fill is exact.
    """
    nx, ny = len(xs) - 1, len(ys) - 1
    mask = [[False] * ny for _ in range(nx)]
    for rect in area:
        i_lo = bisect_left(xs, rect.x_lo)
        i_hi = bisect_left(xs, rect.x_hi)
        j_lo = bisect_left(ys, rect.y_lo)
        j_hi = bisect_left(ys, rect.y_hi)
        for i in range(i_lo, i_hi):
            row = mask[i]
            for j in range(j_lo, j_hi):
                row[j] = True
    return mask


def decompose_regions(
    die: Rect,
    bounds: MoveBoundSet,
    blockages: RectSet = RectSet(),
    merge_maximal: bool = True,
) -> RegionDecomposition:
    """Decompose the die into maximal movebound-pure regions.

    Parameters
    ----------
    merge_maximal:
        When True (default), Hanan cells with equal signature merge into
        one (possibly disconnected) maximal region, as in Figure 1.
        When False, every Hanan cell becomes its own region — the
        O(l^2) decomposition of Lemma 1, useful for tests.
    """
    xs, ys = hanan_coordinates(bounds.encoding_rects(), die)
    nx, ny = len(xs) - 1, len(ys) - 1

    all_bounds = bounds.all_bounds()  # explicit bounds + default, default last
    masks = {
        b.name: _covered_cell_mask(xs, ys, b.area) for b in all_bounds
    }

    groups: Dict[FrozenSet[str], List[Rect]] = {}
    for i in range(nx):
        if xs[i + 1] <= xs[i]:
            continue
        for j in range(ny):
            if ys[j + 1] <= ys[j]:
                continue
            cell = Rect(xs[i], ys[j], xs[i + 1], ys[j + 1])
            sig = frozenset(
                name for name, mask in masks.items() if mask[i][j]
            )
            if merge_maximal:
                groups.setdefault(sig, []).append(cell)
            else:
                groups[frozenset({f"#cell{i},{j}"}) | sig] = [cell]

    regions: List[Region] = []
    for sig, rects in sorted(
        groups.items(), key=lambda kv: sorted(kv[0])
    ):
        clean_sig = frozenset(n for n in sig if not n.startswith("#cell"))
        area = RectSet(rects)
        free = area.subtract(blockages)
        regions.append(
            Region(
                index=len(regions),
                signature=clean_sig,
                area=area,
                free_area=free,
            )
        )
    return RegionDecomposition(die, bounds, regions)
