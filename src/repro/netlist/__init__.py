"""Netlist substrate: cells, pins, nets and the placement state.

The placer works on a :class:`~repro.netlist.netlist.Netlist`, which owns

* the cell list (movable standard cells, macros and fixed pads),
* the net hypergraph with pin offsets,
* the die rectangle, placement blockages, and row geometry,
* the current placement as numpy coordinate arrays (cell centers).

Half-perimeter wirelength (HPWL) and pin-position evaluation live here
because every other subsystem consumes them.
"""

from repro.netlist.elements import Cell, Pin, Net
from repro.netlist.netlist import Netlist, PlacementSnapshot

__all__ = ["Cell", "Pin", "Net", "Netlist", "PlacementSnapshot"]
