"""Cells, pins and nets.

Conventions:

* Cell positions refer to the *center* of the cell; the covered
  rectangle is ``center ± (width/2, height/2)``.  Center coordinates
  make quadratic net models symmetric and are converted to lower-left
  corners only at the Bookshelf I/O boundary.
* A pin belongs either to a cell (``cell_index >= 0``) with an offset
  from the cell center, or is a fixed terminal (``cell_index == -1``)
  with absolute coordinates stored in the offset fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

FIXED_PIN = -1


@dataclass(slots=True)
class Cell:
    """A rectangular cell (standard cell, macro, or pad)."""

    name: str
    width: float
    height: float
    fixed: bool = False
    movebound: Optional[str] = None
    index: int = -1  # assigned when added to a Netlist

    @property
    def size(self) -> float:
        """Cell area — written size(c) in the paper."""
        return self.width * self.height

    def __repr__(self) -> str:
        tag = " fixed" if self.fixed else ""
        mb = f" mb={self.movebound}" if self.movebound else ""
        return f"Cell({self.name!r} {self.width}x{self.height}{tag}{mb})"


@dataclass(frozen=True, slots=True)
class Pin:
    """A net pin: either on a cell (offset from center) or a fixed
    terminal at absolute coordinates."""

    cell_index: int
    offset_x: float = 0.0
    offset_y: float = 0.0

    @property
    def is_fixed_terminal(self) -> bool:
        return self.cell_index == FIXED_PIN

    @staticmethod
    def terminal(x: float, y: float) -> "Pin":
        """A pad / pre-placed pin at absolute position (x, y)."""
        return Pin(FIXED_PIN, x, y)


@dataclass(slots=True)
class Net:
    """A multi-terminal net connecting two or more pins."""

    name: str
    pins: List[Pin] = field(default_factory=list)
    weight: float = 1.0

    @property
    def degree(self) -> int:
        return len(self.pins)

    def __repr__(self) -> str:
        return f"Net({self.name!r}, degree={self.degree}, w={self.weight})"
