"""The Netlist container and placement state.

A Netlist owns cells, nets, the die rectangle, blockages and row
geometry, plus the *current placement* as numpy arrays of cell-center
coordinates.  Placements are cheap to snapshot and restore, which the
partitioning and legalization code uses heavily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Rect, RectSet
from repro.netlist.elements import Cell, Net, Pin


@dataclass
class PlacementSnapshot:
    """An immutable copy of cell-center coordinates."""

    x: np.ndarray
    y: np.ndarray

    def copy(self) -> "PlacementSnapshot":
        return PlacementSnapshot(self.x.copy(), self.y.copy())


class Netlist:
    """Cells + nets + die + placement state.

    Parameters
    ----------
    die:
        The chip area rectangle (``A`` in the paper).
    row_height:
        Height of a standard-cell row; cells whose height equals the
        row height are row-legalizable standard cells.
    site_width:
        Legal x-granularity inside a row.
    """

    def __init__(
        self,
        die: Rect,
        row_height: float = 1.0,
        site_width: float = 1.0,
        name: str = "netlist",
    ) -> None:
        self.name = name
        self.die = die
        self.row_height = row_height
        self.site_width = site_width
        self.cells: List[Cell] = []
        self.nets: List[Net] = []
        self.blockages: RectSet = RectSet()
        self._cell_by_name: Dict[str, int] = {}
        self.x: np.ndarray = np.zeros(0)
        self.y: np.ndarray = np.zeros(0)
        # lazy vectorization caches (invalidated on structural change)
        self._hpwl_cache: Optional[tuple] = None
        self._dim_cache: Optional[tuple] = None
        self._size_cache = None
        self._nets_cache: Optional[list] = None
        self._cell_nets_csr_cache: Optional[tuple] = None
        self._net_row_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_cell(
        self,
        name: str,
        width: float,
        height: float,
        *,
        x: Optional[float] = None,
        y: Optional[float] = None,
        fixed: bool = False,
        movebound: Optional[str] = None,
    ) -> Cell:
        """Create a cell; position defaults to the die center."""
        if name in self._cell_by_name:
            raise ValueError(f"duplicate cell name {name!r}")
        if width <= 0 or height <= 0:
            raise ValueError(f"cell {name!r} must have positive dimensions")
        cell = Cell(name, width, height, fixed=fixed, movebound=movebound)
        cell.index = len(self.cells)
        self._hpwl_cache = None
        self._dim_cache = None
        self._size_cache = None
        self._nets_cache = None
        self._cell_nets_csr_cache = None
        self._net_row_cache = None
        self.cells.append(cell)
        self._cell_by_name[name] = cell.index
        cx, cy = self.die.center
        self.x = np.append(self.x, cx if x is None else x)
        self.y = np.append(self.y, cy if y is None else y)
        return cell

    def add_cells(
        self,
        names: Sequence[str],
        widths,
        heights,
        *,
        x=None,
        y=None,
        fixed: bool = False,
        movebound: Optional[str] = None,
    ) -> List[Cell]:
        """Bulk :meth:`add_cell`: append many cells in one call.

        ``widths``/``heights`` broadcast against ``names``; positions
        default to the die center.  Validation and coordinate growth
        are vectorized — one array concatenation instead of one
        ``np.append`` per cell, which is what makes million-cell
        construction linear instead of quadratic.
        """
        n = len(names)
        widths = np.broadcast_to(
            np.asarray(widths, dtype=np.float64), (n,)
        )
        heights = np.broadcast_to(
            np.asarray(heights, dtype=np.float64), (n,)
        )
        if np.any(widths <= 0) or np.any(heights <= 0):
            bad = int(
                np.nonzero((widths <= 0) | (heights <= 0))[0][0]
            )
            raise ValueError(
                f"cell {names[bad]!r} must have positive dimensions"
            )
        cx, cy = self.die.center
        xs = (
            np.full(n, cx)
            if x is None
            else np.broadcast_to(np.asarray(x, dtype=np.float64), (n,))
        )
        ys = (
            np.full(n, cy)
            if y is None
            else np.broadcast_to(np.asarray(y, dtype=np.float64), (n,))
        )
        base = len(self.cells)
        new_cells = [
            Cell(nm, w, h, fixed=fixed, movebound=movebound, index=base + i)
            for i, (nm, w, h) in enumerate(
                zip(names, widths.tolist(), heights.tolist())
            )
        ]
        self._cell_by_name.update(
            (c.name, c.index) for c in new_cells
        )
        if len(self._cell_by_name) != base + n:
            raise ValueError("duplicate cell name in bulk add_cells")
        self.cells.extend(new_cells)
        self.x = np.concatenate([self.x, xs])
        self.y = np.concatenate([self.y, ys])
        self._hpwl_cache = None
        self._dim_cache = None
        self._size_cache = None
        self._nets_cache = None
        self._cell_nets_csr_cache = None
        self._net_row_cache = None
        return new_cells

    def add_nets_bulk(
        self,
        names: Sequence[str],
        member_lists: Sequence[Sequence[int]],
        weights=None,
    ) -> None:
        """Bulk :meth:`add_net` for center-pin nets.

        Each entry of ``member_lists`` is a sequence of cell indices;
        every pin sits at its cell center (offset 0, the generator's
        convention).  Index validation runs once over the flattened
        members instead of per pin.
        """
        if len(member_lists) != len(names):
            raise ValueError("names and member_lists length mismatch")
        member_lists = [
            m if isinstance(m, list)
            else m.tolist() if isinstance(m, np.ndarray)
            else list(m)
            for m in member_lists
        ]
        nonempty = [m for m in member_lists if m]
        if nonempty:
            lo = min(map(min, nonempty))
            hi = max(map(max, nonempty))
            if lo < 0 or hi >= len(self.cells):
                raise ValueError(
                    f"bulk net references cell index "
                    f"{hi if hi >= len(self.cells) else lo}, "
                    f"but only {len(self.cells)} cells exist"
                )
        # Pins are frozen and a center pin only depends on its cell, so
        # nets share one Pin instance per cell — ~4x fewer dataclass
        # constructions and proportionally less memory at 10^6 nets.
        pins = list(map(Pin, range(len(self.cells))))
        if weights is None:
            self.nets.extend(
                Net(nm, [pins[c] for c in m])
                for nm, m in zip(names, member_lists)
            )
        else:
            self.nets.extend(
                Net(nm, [pins[c] for c in m], float(w))
                for nm, m, w in zip(names, member_lists, weights)
            )
        self._hpwl_cache = None
        self._nets_cache = None
        self._cell_nets_csr_cache = None
        self._net_row_cache = None

    def add_net(self, name: str, pins: Iterable[Pin], weight: float = 1.0) -> Net:
        net = Net(name, list(pins), weight)
        for pin in net.pins:
            if pin.cell_index >= len(self.cells):
                raise ValueError(
                    f"net {name!r} references cell index {pin.cell_index}, "
                    f"but only {len(self.cells)} cells exist"
                )
        self.nets.append(net)
        self._hpwl_cache = None
        self._nets_cache = None
        self._cell_nets_csr_cache = None
        self._net_row_cache = None
        return net

    def add_blockage(self, rect: Rect) -> None:
        self.blockages = self.blockages.union(RectSet([rect]))

    def cell_index(self, name: str) -> int:
        return self._cell_by_name[name]

    def finalize(self) -> None:
        """Freeze coordinate arrays into contiguous float64 storage.

        Call after bulk construction; add_cell keeps working afterwards
        but repeated np.append during construction of large netlists is
        slow, so builders batch via set_positions instead.
        """
        self.x = np.ascontiguousarray(self.x, dtype=np.float64)
        self.y = np.ascontiguousarray(self.y, dtype=np.float64)

    # ------------------------------------------------------------------
    # placement state
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def movable_indices(self) -> np.ndarray:
        return np.array(
            [c.index for c in self.cells if not c.fixed], dtype=np.int64
        )

    @property
    def fixed_mask(self) -> np.ndarray:
        return np.array([c.fixed for c in self.cells], dtype=bool)

    def movable_area(self) -> float:
        return sum(c.size for c in self.cells if not c.fixed)

    def snapshot(self) -> PlacementSnapshot:
        return PlacementSnapshot(self.x.copy(), self.y.copy())

    def restore(self, snap: PlacementSnapshot) -> None:
        if len(snap.x) != self.num_cells:
            raise ValueError("snapshot size does not match netlist")
        self.x = snap.x.copy()
        self.y = snap.y.copy()

    def set_positions(
        self, x: Sequence[float], y: Sequence[float]
    ) -> None:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(x) != self.num_cells or len(y) != self.num_cells:
            raise ValueError("position arrays must cover all cells")
        self.x = x.copy()
        self.y = y.copy()

    def cell_rect(self, index: int) -> Rect:
        c = self.cells[index]
        return Rect(
            self.x[index] - c.width / 2,
            self.y[index] - c.height / 2,
            self.x[index] + c.width / 2,
            self.y[index] + c.height / 2,
        )

    def pin_position(self, pin: Pin) -> Tuple[float, float]:
        if pin.is_fixed_terminal:
            return (pin.offset_x, pin.offset_y)
        return (
            self.x[pin.cell_index] + pin.offset_x,
            self.y[pin.cell_index] + pin.offset_y,
        )

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def net_bbox(self, net: Net) -> Optional[Rect]:
        """Bounding box of all pin positions of the net (None if empty)."""
        if not net.pins:
            return None
        xs: List[float] = []
        ys: List[float] = []
        for pin in net.pins:
            px, py = self.pin_position(pin)
            xs.append(px)
            ys.append(py)
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def _hpwl_arrays(self) -> tuple:
        """Cached flat pin arrays for vectorized HPWL."""
        if self._hpwl_cache is None:
            ptr = [0]
            pin_cell: List[int] = []
            off_x: List[float] = []
            off_y: List[float] = []
            weights: List[float] = []
            for net in self.nets:
                if net.degree < 2:
                    continue
                for pin in net.pins:
                    pin_cell.append(pin.cell_index)
                    off_x.append(pin.offset_x)
                    off_y.append(pin.offset_y)
                ptr.append(len(pin_cell))
                weights.append(net.weight)
            self._hpwl_cache = (
                np.array(ptr[:-1], dtype=np.int64),
                np.array(pin_cell, dtype=np.int64),
                np.array(off_x),
                np.array(off_y),
                np.array(weights),
            )
        return self._hpwl_cache

    def hpwl(self) -> float:
        """Weighted half-perimeter wirelength of the current placement."""
        ptr, pin_cell, off_x, off_y, weights = self._hpwl_arrays()
        if len(weights) == 0:
            return 0.0
        on_cell = pin_cell >= 0
        px = np.where(on_cell, self.x[pin_cell] + off_x, off_x)
        py = np.where(on_cell, self.y[pin_cell] + off_y, off_y)
        dx = np.maximum.reduceat(px, ptr) - np.minimum.reduceat(px, ptr)
        dy = np.maximum.reduceat(py, ptr) - np.minimum.reduceat(py, ptr)
        return float(np.dot(weights, dx + dy))

    def nets_of_cell(self) -> list:
        """Cached net indices incident to each cell (topological)."""
        if self._nets_cache is None:
            out: List[List[int]] = [[] for _ in range(self.num_cells)]
            for nidx, net in enumerate(self.nets):
                for pin in net.pins:
                    if pin.cell_index >= 0:
                        out[pin.cell_index].append(nidx)
            self._nets_cache = out
        return self._nets_cache

    def cell_nets_csr(self) -> tuple:
        """Cached CSR ``(start, net_ids)`` of net indices incident to
        each cell — ``net_ids[start[c]:start[c+1]]`` are cell ``c``'s
        nets, in the same order ``nets_of_cell`` lists them."""
        if self._cell_nets_csr_cache is None:
            lists = self.nets_of_cell()
            start = np.zeros(len(lists) + 1, dtype=np.int64)
            np.cumsum(
                np.fromiter(
                    (len(ln) for ln in lists), np.int64, count=len(lists)
                ),
                out=start[1:],
            )
            ids = np.fromiter(
                (n for ln in lists for n in ln),
                np.int64,
                count=int(start[-1]),
            )
            self._cell_nets_csr_cache = (start, ids)
        return self._cell_nets_csr_cache

    def _net_rows(self) -> np.ndarray:
        """Net index -> row in the ``_hpwl_arrays`` layout (degree < 2
        nets, which that layout drops, map to -1)."""
        if self._net_row_cache is None:
            rows = np.full(self.num_nets, -1, dtype=np.int64)
            r = 0
            for nidx, net in enumerate(self.nets):
                if net.degree >= 2:
                    rows[nidx] = r
                    r += 1
            self._net_row_cache = rows
        return self._net_row_cache

    def net_subset_arrays(self, net_indices) -> tuple:
        """``_hpwl_arrays``-layout flat pin arrays restricted to the
        given (ascending) net indices, extracted by pure array gathers
        from the cached global arrays — value-identical to rebuilding
        the subset net by net."""
        ptr, pin_cell, off_x, off_y, weights = self._hpwl_arrays()
        rows = self._net_rows()[np.asarray(net_indices, dtype=np.int64)]
        rows = rows[rows >= 0]
        n_rows = len(ptr)
        starts = ptr[rows]
        ends = np.where(
            rows + 1 < n_rows,
            ptr[np.minimum(rows + 1, n_rows - 1)],
            len(pin_cell),
        )
        counts = ends - starts
        total = int(counts.sum())
        idx = np.repeat(
            starts - (np.cumsum(counts) - counts), counts
        ) + np.arange(total)
        sub_ptr = np.concatenate(([0], np.cumsum(counts)))[:-1]
        return (
            sub_ptr.astype(np.int64, copy=False),
            pin_cell[idx],
            off_x[idx],
            off_y[idx],
            weights[rows],
        )

    def total_cell_area(self) -> float:
        return sum(c.size for c in self.cells)

    def cell_sizes(self) -> np.ndarray:
        """Cached per-cell areas — ``Cell.size`` evaluated once per
        cell (the identical ``width * height`` product), so hot loops
        gather instead of bouncing through the property per call."""
        if self._size_cache is None:
            self._size_cache = np.array(
                [c.width * c.height for c in self.cells],
                dtype=np.float64,
            )
        return self._size_cache

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _dim_arrays(self) -> tuple:
        """Cached (movable mask, half widths, half heights)."""
        if self._dim_cache is None:
            movable = np.array(
                [not c.fixed for c in self.cells], dtype=bool
            )
            hw = np.array(
                [c.width / 2 for c in self.cells], dtype=np.float64
            )
            hh = np.array(
                [c.height / 2 for c in self.cells], dtype=np.float64
            )
            self._dim_cache = (movable, hw, hh)
        return self._dim_cache

    def clamp_into_die(self) -> None:
        """Clamp every movable cell center so its rectangle fits the die."""
        movable, hw, hh = self._dim_arrays()
        self.x[movable] = np.clip(
            self.x[movable],
            self.die.x_lo + hw[movable],
            self.die.x_hi - hw[movable],
        )
        self.y[movable] = np.clip(
            self.y[movable],
            self.die.y_lo + hh[movable],
            self.die.y_hi - hh[movable],
        )

    def check_in_die(self, tol: float = 1e-6) -> List[int]:
        """Indices of movable cells whose rectangle leaves the die."""
        movable, hw, hh = self._dim_arrays()
        bad = movable & (
            (self.x - hw < self.die.x_lo - tol)
            | (self.y - hh < self.die.y_lo - tol)
            | (self.x + hw > self.die.x_hi + tol)
            | (self.y + hh > self.die.y_hi + tol)
        )
        return np.nonzero(bad)[0].tolist()

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, cells={self.num_cells}, "
            f"nets={self.num_nets}, die={self.die})"
        )
