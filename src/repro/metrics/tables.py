"""Paper-style result tables.

The benchmark harness prints the same rows the paper's tables report;
this module provides the shared rendering (aligned columns, percent
ratios, hh:mm:ss runtimes) so every bench emits comparable output.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_hms(seconds: float) -> str:
    """Format a duration as h:mm:ss (paper table convention)."""
    seconds = max(0, int(round(seconds)))
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}"


def format_ratio(value: float, base: float) -> str:
    """'83.2%'-style ratio against a baseline."""
    if base == 0:
        return "n/a"
    return f"{100.0 * value / base:.1f}%"


class Table:
    """Minimal aligned-column table printer."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(
            c.ljust(widths[i]) for i, c in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
