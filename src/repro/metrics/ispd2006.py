"""ISPD 2006 contest scoring (Table VII).

The contest ranked placers by *scaled HPWL*:

    H+D   = HPWL * (1 + D)          density-scaled wirelength
    H+D+C = HPWL * (1 + D) * (1 + C)  with the CPU factor

where

* D (density penalty) measures how much bin utilization exceeds the
  target density.  We use the documented approximation
  ``D = total overflow beyond target / total bin capacity at target``
  over a standard bin grid, which lands in the contest's reported
  percent range (the paper's DENS column shows 0.97 %–2.27 %).
* C (CPU factor) rewards/punishes runtime relative to a reference
  machine/median: 4 % per factor of two, *truncated at -10 %* — the
  paper italicizes exactly this truncation in Table VII.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import Optional

from repro.metrics.density import DensityMap, default_bin_count
from repro.netlist import Netlist

#: The contest's CPU bonus truncation.
CPU_BONUS_FLOOR = -0.10
#: Reward/penalty per factor-2 runtime difference.
CPU_RATE = 0.04


def density_penalty(
    netlist: Netlist,
    target_density: float,
    bins: Optional[int] = None,
) -> float:
    """Density penalty D (a fraction, e.g. 0.0181 for 1.81 %)."""
    n = bins or default_bin_count(netlist)
    dmap = DensityMap(netlist, n, n)
    cap = float((dmap.capacity * target_density).sum())
    if cap <= 0:
        return 0.0
    return dmap.total_overflow(target_density) / cap


def cpu_factor(runtime: float, reference_runtime: float) -> float:
    """CPU bonus/penalty C: 4 % per factor-2 vs the reference,
    truncated at -10 % (negative = bonus, as in the paper)."""
    if runtime <= 0 or reference_runtime <= 0:
        return 0.0
    raw = CPU_RATE * log2(runtime / reference_runtime)
    return max(raw, CPU_BONUS_FLOOR)


@dataclass
class ISPD2006Score:
    """One row of Table VII."""

    hpwl: float
    dens: float  # D, fraction
    cpu: float  # C, fraction (negative = bonus)
    runtime: float

    @property
    def scaled_hd(self) -> float:
        return self.hpwl * (1.0 + self.dens)

    @property
    def scaled_hdc(self) -> float:
        return self.hpwl * (1.0 + self.dens) * (1.0 + self.cpu)


def ispd2006_score(
    netlist: Netlist,
    target_density: float,
    runtime: float,
    reference_runtime: float,
    bins: Optional[int] = None,
) -> ISPD2006Score:
    """Score the current placement per the ISPD 2006 formula."""
    return ISPD2006Score(
        hpwl=netlist.hpwl(),
        dens=density_penalty(netlist, target_density, bins),
        cpu=cpu_factor(runtime, reference_runtime),
        runtime=runtime,
    )
