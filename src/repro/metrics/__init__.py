"""Metrics and scoring.

* :mod:`repro.metrics.density` — bin utilization maps, overflow.
* :mod:`repro.metrics.ispd2006` — the ISPD 2006 contest scoring used in
  Table VII: HPWL, density penalty (D), CPU bonus/penalty (C, truncated
  at -10 %), and their combinations.
* :mod:`repro.metrics.tables` — result records and paper-style table
  rendering for the benchmark harness.
"""

from repro.metrics.density import DensityMap
from repro.metrics.ispd2006 import (
    cpu_factor,
    density_penalty,
    ispd2006_score,
)
from repro.metrics.tables import Table, format_hms, format_ratio

__all__ = [
    "DensityMap",
    "density_penalty",
    "cpu_factor",
    "ispd2006_score",
    "Table",
    "format_hms",
    "format_ratio",
]
