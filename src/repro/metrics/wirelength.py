"""Wirelength models beyond HPWL.

HPWL is the optimization target of the paper (and this placer), but
routed wirelength tracks the rectilinear Steiner minimal tree (RSMT)
more closely.  This module provides:

* :func:`net_hpwl` — per-net half-perimeter;
* :func:`net_rsmt_estimate` — an RSMT length estimate: exact for 2-3
  pins; for larger nets, the rectilinear minimum spanning tree (Prim on
  L1 distances) scaled by the classical expected RSMT/RMST ratio; RMST
  itself is a valid upper bound and is also exposed;
* :func:`wirelength_report` — design-level totals of all models, the
  basis for "HPWL is a faithful proxy" checks in the benchmarks.

These are evaluation metrics only — nothing here feeds back into the
QP, keeping the reproduction's objective identical to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.netlist import Net, Netlist

#: Expected RSMT/RMST ratio for uniformly distributed pins; the
#: classical value used in estimation literature.
RSMT_RMST_RATIO = 0.887


def _pin_coords(netlist: Netlist, net: Net) -> Tuple[np.ndarray, np.ndarray]:
    xs, ys = [], []
    for pin in net.pins:
        px, py = netlist.pin_position(pin)
        xs.append(px)
        ys.append(py)
    return (
        np.array(xs, dtype=np.float64),
        np.array(ys, dtype=np.float64),
    )


def net_hpwl(netlist: Netlist, net: Net) -> float:
    """Half-perimeter wirelength of one net."""
    if net.degree < 2:
        return 0.0
    xs, ys = _pin_coords(netlist, net)
    return float(np.ptp(xs) + np.ptp(ys))


def net_rmst(netlist: Netlist, net: Net) -> float:
    """Rectilinear minimum spanning tree length (Prim, O(p^2))."""
    if net.degree < 2:
        return 0.0
    xs, ys = _pin_coords(netlist, net)
    p = len(xs)
    in_tree = np.zeros(p, dtype=bool)
    dist = np.full(p, np.inf)
    in_tree[0] = True
    dist = np.abs(xs - xs[0]) + np.abs(ys - ys[0])
    dist[0] = np.inf
    total = 0.0
    for _ in range(p - 1):
        j = int(np.argmin(np.where(in_tree, np.inf, dist)))
        total += float(dist[j])
        in_tree[j] = True
        cand = np.abs(xs - xs[j]) + np.abs(ys - ys[j])
        dist = np.where(in_tree, np.inf, np.minimum(dist, cand))
    return total


def net_rsmt_estimate(netlist: Netlist, net: Net) -> float:
    """Rectilinear Steiner minimal tree length estimate.

    Exact for 2 pins (= HPWL) and 3 pins (= HPWL of the bounding box,
    which the median Steiner point achieves); spanning-tree-scaled for
    larger nets.
    """
    p = net.degree
    if p < 2:
        return 0.0
    if p <= 3:
        return net_hpwl(netlist, net)
    return RSMT_RMST_RATIO * net_rmst(netlist, net)


@dataclass
class WirelengthReport:
    """Design-level wirelength totals under the three models."""

    hpwl: float
    rmst: float
    rsmt_estimate: float

    @property
    def rsmt_over_hpwl(self) -> float:
        """How much the HPWL proxy underestimates tree length; for
        typical degree distributions this sits around 1.0-1.25."""
        return self.rsmt_estimate / self.hpwl if self.hpwl > 0 else 1.0


def wirelength_report(netlist: Netlist) -> WirelengthReport:
    """Totals of all wirelength models over the design."""
    hpwl = rmst = rsmt = 0.0
    for net in netlist.nets:
        if net.degree < 2:
            continue
        hpwl += net.weight * net_hpwl(netlist, net)
        tree = net_rmst(netlist, net)
        rmst += net.weight * tree
        if net.degree <= 3:
            rsmt += net.weight * net_hpwl(netlist, net)
        else:
            rsmt += net.weight * RSMT_RMST_RATIO * tree
    return WirelengthReport(hpwl, rmst, rsmt)
