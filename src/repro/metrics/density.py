"""Bin-based density analysis.

A :class:`DensityMap` rasterizes cell area onto a regular bin grid with
exact rectangle-overlap accounting, and exposes the utilization and
overflow quantities used by spreading placers (RQL/Kraftwerk-style
baselines) and the ISPD 2006 density penalty.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.geometry import Rect
from repro.netlist import Netlist


class DensityMap:
    """Cell-area utilization on an nx x ny bin grid."""

    def __init__(self, netlist: Netlist, nx: int, ny: int) -> None:
        self.netlist = netlist
        self.nx = nx
        self.ny = ny
        die = netlist.die
        self.bin_w = die.width / nx
        self.bin_h = die.height / ny
        self.usage = np.zeros((nx, ny))
        #: capacity of each bin = bin area minus blockages & fixed cells
        self.capacity = np.full((nx, ny), self.bin_w * self.bin_h)
        for rect in netlist.blockages:
            self._splat(rect, self.capacity, sign=-1.0)
        for cell in netlist.cells:
            if cell.fixed:
                self._splat(
                    netlist.cell_rect(cell.index), self.capacity, sign=-1.0
                )
        np.clip(self.capacity, 0.0, None, out=self.capacity)
        self.update()

    # ------------------------------------------------------------------
    def _splat(self, rect: Rect, target: np.ndarray, sign: float = 1.0) -> None:
        """Add the rectangle's exact overlap area into the bin array."""
        die = self.netlist.die
        x_lo = max(rect.x_lo, die.x_lo)
        x_hi = min(rect.x_hi, die.x_hi)
        y_lo = max(rect.y_lo, die.y_lo)
        y_hi = min(rect.y_hi, die.y_hi)
        if x_hi <= x_lo or y_hi <= y_lo:
            return
        i_lo = int((x_lo - die.x_lo) / self.bin_w)
        i_hi = min(int((x_hi - die.x_lo) / self.bin_w), self.nx - 1)
        j_lo = int((y_lo - die.y_lo) / self.bin_h)
        j_hi = min(int((y_hi - die.y_lo) / self.bin_h), self.ny - 1)
        for i in range(i_lo, i_hi + 1):
            bx_lo = die.x_lo + i * self.bin_w
            ow = min(x_hi, bx_lo + self.bin_w) - max(x_lo, bx_lo)
            if ow <= 0:
                continue
            for j in range(j_lo, j_hi + 1):
                by_lo = die.y_lo + j * self.bin_h
                oh = min(y_hi, by_lo + self.bin_h) - max(y_lo, by_lo)
                if oh > 0:
                    target[i, j] += sign * ow * oh

    def update(self) -> None:
        """Recompute utilization from the current cell positions."""
        self.usage.fill(0.0)
        for cell in self.netlist.cells:
            if cell.fixed:
                continue
            self._splat(self.netlist.cell_rect(cell.index), self.usage)

    # ------------------------------------------------------------------
    def utilization(self) -> np.ndarray:
        """usage / capacity, with fully-blocked bins reported as 0."""
        with np.errstate(divide="ignore", invalid="ignore"):
            u = np.where(self.capacity > 1e-9, self.usage / self.capacity, 0.0)
        return u

    def total_overflow(self, target: float = 1.0) -> float:
        """Cell area beyond ``target x capacity``, summed over bins."""
        return float(
            np.maximum(self.usage - target * self.capacity, 0.0).sum()
        )

    def overflow_ratio(self, target: float = 1.0) -> float:
        """Total overflow relative to total movable cell area."""
        area = self.netlist.movable_area()
        if area <= 0:
            return 0.0
        return self.total_overflow(target) / area

    def max_utilization(self) -> float:
        return float(self.utilization().max(initial=0.0))

    def bin_center(self, i: int, j: int) -> Tuple[float, float]:
        die = self.netlist.die
        return (
            die.x_lo + (i + 0.5) * self.bin_w,
            die.y_lo + (j + 0.5) * self.bin_h,
        )

    def bin_of(self, x: float, y: float) -> Tuple[int, int]:
        die = self.netlist.die
        i = min(max(int((x - die.x_lo) / self.bin_w), 0), self.nx - 1)
        j = min(max(int((y - die.y_lo) / self.bin_h), 0), self.ny - 1)
        return i, j


def default_bin_count(netlist: Netlist) -> int:
    """A bin grid around sqrt(#cells), the usual spreading resolution."""
    n = max(netlist.num_cells, 1)
    return max(4, int(round(n**0.5 / 2)))
