"""Deterministic parallel scheduling of realization (paper §IV.B).

Two external arcs without unrealized external predecessors can be
realized independently when their coarse windows do not overlap.  The
scheduler below greedily packs ready arcs with pairwise-disjoint coarse
blocks into rounds, in a fixed deterministic order, and reports the
achievable speedup — the quantity behind the paper's "up to 7.9 with
8 CPUs" claim.  (Execution in this reproduction is sequential Python;
the *schedule* is what carries the parallelism result.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.fbp.model import ExternalArc, FBPModel
from repro.fbp.realization import cancel_external_cycles
from repro.obs import incr, span


@dataclass
class ParallelSchedule:
    """Rounds of independently realizable external arcs."""

    rounds: List[List[ExternalArc]] = field(default_factory=list)

    @property
    def num_arcs(self) -> int:
        return sum(len(r) for r in self.rounds)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def max_parallelism(self) -> int:
        return max((len(r) for r in self.rounds), default=0)

    def speedup(self, num_cpus: int) -> float:
        """Speedup over sequential processing with unit-cost arcs:
        sequential time / sum over rounds of ceil(round size / CPUs)."""
        if self.num_arcs == 0:
            return 1.0
        parallel_time = sum(
            math.ceil(len(r) / num_cpus) for r in self.rounds
        )
        return self.num_arcs / max(parallel_time, 1)


def compute_schedule(
    model: FBPModel,
    flows: List[Tuple[ExternalArc, float]],
) -> ParallelSchedule:
    """Build the deterministic parallel schedule for the given flow.

    Ready = every external arc into the arc's source window (same
    movebound) already scheduled.  Among ready arcs, a deterministic
    greedy picks a maximal set whose coarse blocks are pairwise
    disjoint; that set forms one round.
    """
    with span("fbp.schedule.compute"):
        schedule = _compute_schedule(model, flows)
    incr("schedule.computed")
    incr("schedule.rounds", schedule.num_rounds)
    incr("schedule.arcs", schedule.num_arcs)
    return schedule


def _compute_schedule(
    model: FBPModel,
    flows: List[Tuple[ExternalArc, float]],
) -> ParallelSchedule:
    flows = cancel_external_cycles(flows)
    grid = model.grid
    pending = list(range(len(flows)))
    scheduled = [False] * len(flows)

    # predecessors: arcs of same bound ending at this arc's source window
    preds: Dict[int, List[int]] = {i: [] for i in pending}
    for i, (arc, _f) in enumerate(flows):
        for j, (other, _g) in enumerate(flows):
            if i != j and other.bound == arc.bound and other.dst_window == arc.src_window:
                preds[i].append(j)

    blocks: List[Set[int]] = []
    for arc, _f in flows:
        block = grid.coarse_block(
            grid.windows[arc.src_window], grid.windows[arc.dst_window]
        )
        blocks.append({w.index for w in block})

    schedule = ParallelSchedule()
    remaining = set(pending)
    while remaining:
        ready = sorted(
            i
            for i in remaining
            if all(scheduled[j] for j in preds[i])
        )
        if not ready:
            # should not happen after cycle cancellation; fall back to
            # breaking the tie deterministically
            ready = [min(remaining)]
        used: Set[int] = set()
        this_round: List[int] = []
        for i in ready:
            if blocks[i] & used:
                continue
            used |= blocks[i]
            this_round.append(i)
        for i in this_round:
            scheduled[i] = True
            remaining.discard(i)
        schedule.rounds.append([flows[i][0] for i in this_round])
    return schedule
