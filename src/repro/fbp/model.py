"""The global MinCostFlow model of FBP (paper §IV.A, Figures 2-3).

Node types per window w (per movebound M where applicable):

* cell group ``('cg', M, w)`` — supply = total size of M-cells in w,
  embedded at the cells' center of gravity;
* transit ``('t', M, w, d)`` for d in N/E/S/W — flow buffers, embedded
  at the boundary centers, zero balance;
* region ``('r', w, r)`` for r in R_w — demand = -capa(r), embedded at
  the center of gravity of the region's free area.

Edge sets per window and movebound (all uncapacitated, cost = L1
distance of embeddings):

* ``E^cr``: cell group -> admissible regions,
* ``E^ct``: cell group -> each transit,
* ``E^tt``: every ordered transit pair,
* ``E^tr``: transit -> admissible regions,

plus zero-cost external arcs between facing transit nodes of adjacent
windows (both directions).

Following the paper (and [22]) the model is pruned: transit and cell
group nodes of a movebound M appear only in windows intersecting
A(M)'s bounding box, empty cell groups are omitted, and border transits
with no external partner are dropped.  With this pruning |V| and |E|
are linear in |W| + |R| (Table I reports the ratio |E|/|V| ~ 4-5.5).

Theorem 3: this instance is feasible iff a fractional placement with
movebounds exists — the solver's feasibility flag is the check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.flows import FlowResult, MinCostFlowProblem
from repro.grid import Grid, Window
from repro.grid.grid import DIRECTIONS
from repro.movebounds import DEFAULT_BOUND, MoveBoundSet
from repro.netlist import Netlist
from repro.resilience.budget import SolverBudget
from repro.resilience.solver import ResilientSolver

#: Facing direction of each compass direction.
OPPOSITE = {"N": "S", "S": "N", "E": "W", "W": "E"}


def _l1(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


@dataclass(frozen=True)
class ExternalArc:
    """A flow arc between transit nodes of adjacent windows."""

    arc_id: int
    bound: str
    src_window: int
    dst_window: int
    direction: str  # direction of travel seen from src (N/E/S/W)


@dataclass
class ModelStats:
    """Size accounting for Table I."""

    num_nodes: int = 0
    num_arcs: int = 0
    num_windows: int = 0
    num_regions: int = 0
    num_cell_groups: int = 0
    num_transits: int = 0
    num_external_arcs: int = 0

    @property
    def arc_node_ratio(self) -> float:
        return self.num_arcs / max(self.num_nodes, 1)


class FBPModel:
    """A built (but not yet solved) FBP MinCostFlow instance.

    Attributes
    ----------
    problem:
        The underlying :class:`MinCostFlowProblem`.
    cell_windows:
        Window index per cell (the input assignment).
    group_cells:
        ``(bound, window)`` -> movable cell indices in that group.
    region_arc_ids / external_arcs:
        Arc catalogs for flow readback by the realization step.
    """

    def __init__(
        self,
        netlist: Netlist,
        bounds: MoveBoundSet,
        grid: Grid,
        density_target: float,
    ) -> None:
        self.netlist = netlist
        self.bounds = bounds
        self.grid = grid
        self.density_target = density_target
        self.problem = MinCostFlowProblem()
        self.cell_windows: np.ndarray = np.zeros(0, dtype=np.int64)
        self.group_cells: Dict[Tuple[str, int], List[int]] = {}
        self.group_supply: Dict[Tuple[str, int], float] = {}
        #: (bound, window, region_index) -> arc id, for E^cr and E^tr arcs
        self.region_arc_ids: Dict[Tuple[str, int, int], List[int]] = {}
        self.external_arcs: List[ExternalArc] = []
        self.stats = ModelStats()
        self.region_capacity: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    def solve(
        self,
        method: str = "auto",
        budget: Optional[SolverBudget] = None,
        warm_slot=None,
    ) -> FlowResult:
        """Solve the MinCostFlow; ``result.feasible`` is Theorem 3.

        The solve runs through :class:`ResilientSolver`: when the
        requested backend exhausts its budget or hits numeric trouble,
        the fallback chain (ending in the Dinic-based transportation
        heuristic) still produces a feasibility answer.  The attempt
        log is available as ``result.attempts``.

        ``warm_slot`` (a :class:`~repro.flows.warmstart.WarmStartSlot`)
        lets repeated solves of the same model warm-start the network
        simplex; backends other than ``ns`` ignore it.
        """
        solver = ResilientSolver.for_method(method, budget)
        return solver.solve(self.problem, warm_slot=warm_slot)

    def external_flows(
        self, result: FlowResult, tol: float = 1e-7
    ) -> List[Tuple[ExternalArc, float]]:
        """External arcs carrying flow, with their flow values."""
        out = []
        for arc in self.external_arcs:
            f = result.flow_on(arc.arc_id)
            if f > tol:
                out.append((arc, f))
        return out

    def prescribed_content(
        self, result: FlowResult
    ) -> Dict[Tuple[str, int], float]:
        """Final prescribed cell area per (bound, window):
        supply + external inflow - external outflow."""
        content = dict(self.group_supply)
        for arc, f in self.external_flows(result):
            key_src = (arc.bound, arc.src_window)
            key_dst = (arc.bound, arc.dst_window)
            content[key_src] = content.get(key_src, 0.0) - f
            content[key_dst] = content.get(key_dst, 0.0) + f
        return content

    def region_inflow(
        self, result: FlowResult
    ) -> Dict[Tuple[int, int], float]:
        """Flow absorbed by each (window, region) across all movebounds."""
        inflow: Dict[Tuple[int, int], float] = {}
        for (bound, widx, ridx), arc_ids in self.region_arc_ids.items():
            total = sum(result.flow_on(a) for a in arc_ids)
            if total > 0:
                key = (widx, ridx)
                inflow[key] = inflow.get(key, 0.0) + total
        return inflow


def fixed_cell_usage(
    netlist: Netlist, grid: Grid
) -> Dict[Tuple[int, int], float]:
    """Area consumed by fixed cells per (window, region), to be deducted
    from region capacities.  Blockages are already excluded from free
    areas; fixed *cells* (pre-placed macros) are handled here.

    Fixed cells never move, so the result is a pure function of the
    instance and the grid dimensions — with an active geometry cache
    it is computed once per run and reused across levels and passes.
    """
    from repro.geometry import active_cache

    cache = active_cache()
    if cache is not None:
        cached = cache.get(("fixed_usage", grid.nx, grid.ny))
        if cached is not None:
            return dict(cached)
    usage = _fixed_cell_usage_scan(netlist, grid)
    if cache is not None:
        cache.put(("fixed_usage", grid.nx, grid.ny), dict(usage))
    return usage


def _fixed_cell_usage_scan(
    netlist: Netlist, grid: Grid
) -> Dict[Tuple[int, int], float]:
    usage: Dict[Tuple[int, int], float] = {}
    for cell in netlist.cells:
        if not cell.fixed:
            continue
        rect = netlist.cell_rect(cell.index)
        lo = grid.window_at(rect.x_lo, rect.y_lo)
        hi = grid.window_at(
            min(rect.x_hi, grid.die.x_hi - 1e-12),
            min(rect.y_hi, grid.die.y_hi - 1e-12),
        )
        for iy in range(lo.iy, hi.iy + 1):
            for ix in range(lo.ix, hi.ix + 1):
                window = grid.window(ix, iy)
                for wr in window.regions:
                    overlap = wr.free_area.intersection_area(rect)
                    if overlap > 0:
                        key = (window.index, wr.region.index)
                        usage[key] = usage.get(key, 0.0) + overlap
    return usage


def build_fbp_model(
    netlist: Netlist,
    bounds: MoveBoundSet,
    grid: Grid,
    density_target: float = 1.0,
    cell_windows: Optional[np.ndarray] = None,
) -> FBPModel:
    """Build the FBP MinCostFlow instance for the current placement.

    ``cell_windows`` is the initial cell->window assignment (from a QP,
    a previous partitioning, or an incremental placement); it defaults
    to the windows containing the current cell centers.
    """
    model = FBPModel(netlist, bounds, grid, density_target)
    problem = model.problem

    if cell_windows is None:
        cell_windows = grid.assign_cells(netlist)
    model.cell_windows = cell_windows

    # ------------------------------------------------------------------
    # cell groups C_{Mw} — built by one stable sort over a combined
    # (movebound, window) key instead of a per-cell dict loop, so a
    # million-cell build stays array-speed.  Stable sort keeps members
    # in ascending cell order, matching the former append order.
    # ------------------------------------------------------------------
    group_stats: Dict[Tuple[str, int], Tuple[float, float, float]] = {}
    movable_mask, _hw, _hh = netlist._dim_arrays()
    mv_idx = np.nonzero(movable_mask)[0]
    if len(mv_idx):
        bound_arr = np.array(
            [c.movebound or DEFAULT_BOUND for c in netlist.cells],
            dtype=object,
        )[mv_idx]
        uniq_bounds, bcode = np.unique(bound_arr, return_inverse=True)
        combined = bcode.astype(np.int64) * len(grid) + np.asarray(
            cell_windows, dtype=np.int64
        )[mv_idx]
        order = np.argsort(combined, kind="stable")
        sorted_idx = mv_idx[order]
        sorted_comb = combined[order]
        starts = np.concatenate(
            ([0], np.nonzero(np.diff(sorted_comb))[0] + 1)
        )
        sizes = netlist.cell_sizes()[sorted_idx]
        wsum = np.add.reduceat(sizes, starts)
        wx = np.add.reduceat(sizes * netlist.x[sorted_idx], starts)
        wy = np.add.reduceat(sizes * netlist.y[sorted_idx], starts)
        ends = np.concatenate((starts[1:], [len(sorted_comb)]))
        for gi, (s, e) in enumerate(zip(starts, ends)):
            code = int(sorted_comb[s])
            key = (str(uniq_bounds[code // len(grid)]), code % len(grid))
            model.group_cells[key] = sorted_idx[s:e].tolist()
            group_stats[key] = (
                float(wsum[gi]),
                float(wx[gi] / wsum[gi]),
                float(wy[gi] / wsum[gi]),
            )

    # Windows each movebound may use: bounding-box pruning ([22]).  The
    # box is widened to include windows currently holding the bound's
    # cells (an incremental placement may start them far from A(M)),
    # and kept rectangular so the transit network stays connected.
    bound_windows: Dict[str, Set[int]] = {}
    all_window_ids = {w.index for w in grid}
    group_windows: Dict[str, Set[int]] = {}
    for (bound_name, widx) in model.group_cells:
        group_windows.setdefault(bound_name, set()).add(widx)
    for bound in bounds.all_bounds():
        if bound.name == DEFAULT_BOUND:
            bound_windows[bound.name] = set(all_window_ids)
            continue
        bbox = bound.area.bounding_box()
        for widx in group_windows.get(bound.name, ()):
            bbox = bbox.bbox_union(grid.windows[widx].rect)
        ids = {
            w.index for w in grid if w.rect.overlaps(bbox)
        }
        ids |= group_windows.get(bound.name, set())
        bound_windows[bound.name] = ids

    # ------------------------------------------------------------------
    # region nodes (demand) and capacity bookkeeping
    # ------------------------------------------------------------------
    usage = fixed_cell_usage(netlist, grid)
    region_nodes: Dict[int, List[Tuple[int, Tuple[float, float]]]] = {}
    for window in grid:
        entries = []
        for wr in window.regions:
            cap = wr.capacity(density_target)
            cap -= usage.get((window.index, wr.region.index), 0.0)
            if cap <= 1e-12:
                continue
            key = ("r", window.index, wr.region.index)
            problem.add_node(key, -cap)
            model.region_capacity[(window.index, wr.region.index)] = cap
            entries.append((wr.region.index, wr.centroid()))
            model.stats.num_regions += 1
        region_nodes[window.index] = entries

    # fast admissibility lookup: window -> region_index -> WindowRegion
    wr_lookup: Dict[int, Dict[int, object]] = {
        w.index: {wr.region.index: wr for wr in w.regions} for w in grid
    }

    # ------------------------------------------------------------------
    # per-movebound subgraphs
    # ------------------------------------------------------------------
    active_bounds = sorted(
        {b for (b, _w) in model.group_cells}
        | {b.name for b in bounds.all_bounds() if bound_windows.get(b.name)}
    )
    # only build transit networks for movebounds that have cells
    bounds_with_cells = sorted({b for (b, _w) in model.group_cells})

    transit_exists: Set[Tuple[str, int, str]] = set()
    for bound_name in bounds_with_cells:
        windows = bound_windows.get(bound_name, set())
        for widx in sorted(windows):
            window = grid.windows[widx]
            for d in DIRECTIONS:
                neighbor = grid.neighbor(window, d)
                if neighbor is not None and neighbor.index in windows:
                    transit_exists.add((bound_name, widx, d))

    for bound_name in bounds_with_cells:
        windows = bound_windows.get(bound_name, set())
        for widx in sorted(windows):
            window = grid.windows[widx]
            transits = [
                d for d in DIRECTIONS if (bound_name, widx, d) in transit_exists
            ]
            for d in transits:
                problem.add_node(("t", bound_name, widx, d), 0.0)
                model.stats.num_transits += 1
            n_t = len(transits)
            t_keys = [("t", bound_name, widx, d) for d in transits]
            tpts = np.array(
                [window.boundary_center(d) for d in transits],
                dtype=np.float64,
            ).reshape(n_t, 2)
            # admissibility evaluated once per region (not once per
            # transit×region pair); the arc cost matrices below
            # broadcast coordinate-wise |Δx| + |Δy|, which is the same
            # float expression _l1 evaluates arc by arc
            adm = [
                (ridx, centroid)
                for ridx, centroid in region_nodes[widx]
                if wr_lookup[widx][ridx].admits(bound_name)
            ]
            n_r = len(adm)
            r_keys = [("r", widx, ridx) for ridx, _ in adm]
            rpts = np.array(
                [c for _, c in adm], dtype=np.float64
            ).reshape(n_r, 2)

            # E^tt — ordered transit pairs inside the window
            if n_t > 1:
                dist_tt = np.abs(
                    tpts[:, None, 0] - tpts[None, :, 0]
                ) + np.abs(tpts[:, None, 1] - tpts[None, :, 1])
                i1, i2 = np.nonzero(~np.eye(n_t, dtype=bool))
                problem.add_arcs(
                    [t_keys[i] for i in i1],
                    [t_keys[j] for j in i2],
                    dist_tt[i1, i2],
                )
            # E^tr — transit to admissible regions (transit-major, the
            # row-major ravel of the T x R distance matrix)
            if n_t and n_r:
                dist_tr = np.abs(
                    tpts[:, None, 0] - rpts[None, :, 0]
                ) + np.abs(tpts[:, None, 1] - rpts[None, :, 1])
                arc_ids = iter(
                    problem.add_arcs(
                        [tk for tk in t_keys for _ in range(n_r)],
                        r_keys * n_t,
                        dist_tr.ravel(),
                    )
                )
                for _ in transits:
                    for (ridx, _c), aid in zip(adm, arc_ids):
                        model.region_arc_ids.setdefault(
                            (bound_name, widx, ridx), []
                        ).append(aid)

            # cell group of this window (if any)
            key = (bound_name, widx)
            cells = model.group_cells.get(key)
            if cells:
                supply, gx, gy = group_stats[key]
                cg_key = ("cg", bound_name, widx)
                problem.add_node(cg_key, supply)
                model.group_supply[key] = supply
                model.stats.num_cell_groups += 1
                # E^cr
                if n_r:
                    dist_cr = np.abs(gx - rpts[:, 0]) + np.abs(
                        gy - rpts[:, 1]
                    )
                    cr_ids = problem.add_arcs(
                        [cg_key] * n_r, r_keys, dist_cr
                    )
                    for (ridx, _c), aid in zip(adm, cr_ids):
                        model.region_arc_ids.setdefault(
                            (bound_name, widx, ridx), []
                        ).append(aid)
                # E^ct
                if n_t:
                    dist_ct = np.abs(gx - tpts[:, 0]) + np.abs(
                        gy - tpts[:, 1]
                    )
                    problem.add_arcs(
                        [cg_key] * n_t, t_keys, dist_ct
                    )

        # E^ext — zero-cost arcs between facing transits
        for widx in sorted(windows):
            window = grid.windows[widx]
            for d in ("N", "E"):  # each adjacency handled once, both arcs added
                if (bound_name, widx, d) not in transit_exists:
                    continue
                neighbor = grid.neighbor(window, d)
                if neighbor is None or neighbor.index not in windows:
                    continue
                od = OPPOSITE[d]
                if (bound_name, neighbor.index, od) not in transit_exists:
                    continue
                a = ("t", bound_name, widx, d)
                b = ("t", bound_name, neighbor.index, od)
                aid = problem.add_arc(a, b, 0.0)
                model.external_arcs.append(
                    ExternalArc(aid, bound_name, widx, neighbor.index, d)
                )
                bid = problem.add_arc(b, a, 0.0)
                model.external_arcs.append(
                    ExternalArc(bid, bound_name, neighbor.index, widx, od)
                )

    model.stats.num_windows = len(grid)
    model.stats.num_nodes = len(problem.nodes)
    model.stats.num_arcs = len(problem.arcs)
    model.stats.num_external_arcs = len(model.external_arcs)
    return model
