"""The complete FBP partitioning step used by the global placer.

``fbp_partition`` = build the MinCostFlow model for the current
placement, solve it (Theorem 3 feasibility comes for free), realize the
flow, and report sizes and timing — the quantities of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.fbp.model import FBPModel, ModelStats, build_fbp_model
from repro.fbp.realization import RealizationResult, realize_flow
from repro.fbp.schedule import ParallelSchedule, compute_schedule
from repro.grid import Grid
from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist
from repro.obs import incr, maybe_check, span
from repro.qp import QPOptions

if TYPE_CHECKING:
    from repro.fbp.sharding import ShardReport


@dataclass
class FBPReport:
    """Everything a caller (or Table I) wants to know about one
    partitioning pass."""

    feasible: bool
    stats: ModelStats
    flow_cost: float = float("nan")
    flow_seconds: float = 0.0
    realization_seconds: float = 0.0
    realization: Optional[RealizationResult] = None
    schedule: Optional[ParallelSchedule] = None
    model: Optional[FBPModel] = None
    #: accounting of the sharded solve when ``shard_tiles`` was used
    shard: Optional["ShardReport"] = None


def fbp_partition(
    netlist: Netlist,
    bounds: MoveBoundSet,
    grid: Grid,
    density_target: float = 1.0,
    qp_options: Optional[QPOptions] = None,
    mcf_method: str = "auto",
    run_local_qp: bool = True,
    compute_parallel_schedule: bool = False,
    cell_windows: Optional[np.ndarray] = None,
    keep_model: bool = False,
    transport_method: str = "auto",
    shard_tiles: Optional[int] = None,
    realize_tiles: Optional[int] = None,
) -> FBPReport:
    """One flow-based partitioning pass on the current placement.

    Guarantees (Theorem 3 + §IV.B): if any fractional placement with
    the given movebounds exists, the report is feasible and after the
    pass every window satisfies condition (1) up to cell-integrality
    slack; otherwise ``feasible`` is False and positions are untouched.

    ``shard_tiles`` > 1 replaces the monolithic MinCostFlow solve with
    the tile-sharded path of :mod:`repro.fbp.sharding` (exact in the
    zero-cut-flow regime, reported approximation otherwise; falls back
    to the monolithic solve whenever the tiling cannot express the
    instance).

    ``realize_tiles`` controls the tile-parallel dispatch of the final
    per-window realization solves through an active worker pool
    (``None`` = auto; bit-identical to the serial path either way; see
    :func:`repro.fbp.realization.realize_flow`).
    """
    shard_report = None
    with span("fbp.flow") as sp_flow:
        with span("fbp.build"):
            model = build_fbp_model(
                netlist, bounds, grid, density_target, cell_windows
            )
        with span("fbp.solve"):
            if shard_tiles is not None and shard_tiles > 1:
                from repro.fbp.sharding import solve_sharded

                result, shard_report = solve_sharded(
                    model,
                    shard_tiles,
                    mcf_method=mcf_method,
                    transport_method=transport_method,
                )
            else:
                result = model.solve(mcf_method)

    incr("fbp.partitions")
    incr("fbp.model.nodes", model.stats.num_nodes)
    incr("fbp.model.arcs", model.stats.num_arcs)
    incr("fbp.model.windows", model.stats.num_windows)
    incr("fbp.model.external_arcs", model.stats.num_external_arcs)

    report = FBPReport(
        feasible=result.feasible,
        stats=model.stats,
        flow_seconds=sp_flow.wall_s,
        shard=shard_report,
    )
    if keep_model:
        report.model = model
    if not result.feasible:
        return report
    report.flow_cost = result.cost
    maybe_check("fbp.region_capacity", model, result)

    if compute_parallel_schedule:
        with span("fbp.schedule"):
            report.schedule = compute_schedule(
                model, model.external_flows(result)
            )

    with span("fbp.realize") as sp_realize:
        report.realization = realize_flow(
            model,
            result,
            qp_options=qp_options,
            run_local_qp=run_local_qp,
            transport_method=transport_method,
            realize_tiles=realize_tiles,
        )
    report.realization_seconds = sp_realize.wall_s
    maybe_check(
        "movebound.containment",
        netlist,
        bounds,
        cells=list(report.realization.assignment),
    )
    return report
