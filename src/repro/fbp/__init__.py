"""Flow-based partitioning (FBP) — the paper's core contribution (§IV).

The pipeline:

1. :mod:`repro.fbp.model` builds the global MinCostFlow instance
   ``(G, b, cost)`` with cell-group, transit and region nodes per
   window (and per movebound), intra-window edge sets
   ``E^cr, E^ct, E^tt, E^tr`` and zero-cost external edges between
   facing transit nodes of adjacent windows.  |V(G)| and |E(G)| are
   linear in |W| + |R| and independent of the number of cells.
2. Theorem 3: the instance is feasible iff a fractional placement with
   movebounds exists — surfaced by the solver's feasibility flag.
3. :mod:`repro.fbp.realization` turns the abstract flow into actual
   cell movement: external flow arcs are processed in topological
   order; each is realized over a 2x3/3x2 *coarse window* by a local QP
   followed by a movebound-aware transportation step whose transit
   capacities are the current flow excess (eq. (2)).
4. :mod:`repro.fbp.schedule` computes the deterministic parallel
   schedule (independent arcs = disjoint coarse windows) whose
   achievable speedup the paper reports.
5. :mod:`repro.fbp.partitioner` wraps 1-4 into the single
   ``fbp_partition`` step used by the global placer.
"""

from repro.fbp.model import FBPModel, build_fbp_model
from repro.fbp.realization import RealizationResult, realize_flow
from repro.fbp.realize_windows import (
    WindowOutcome,
    WindowSpec,
    realize_unit,
)
from repro.fbp.schedule import ParallelSchedule, compute_schedule
from repro.fbp.partitioner import FBPReport, fbp_partition

__all__ = [
    "FBPModel",
    "build_fbp_model",
    "RealizationResult",
    "realize_flow",
    "WindowSpec",
    "WindowOutcome",
    "realize_unit",
    "ParallelSchedule",
    "compute_schedule",
    "FBPReport",
    "fbp_partition",
]
