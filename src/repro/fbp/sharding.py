"""Sharded solving of the global FBP MinCostFlow (scale sweep path).

The monolithic model of :mod:`repro.fbp.model` couples every window
through the transit network; at a million cells (128x128 windows) one
flat network-simplex solve dominates the runtime and working set.
Sharding splits the window grid into ``sx x sy`` spatial *tiles* and
solves each tile independently through the same supervised
transportation machinery (:func:`repro.runstate.pool.
solve_transport_batch`) the intra-window partitioning already uses:

1. External arcs whose endpoints fall in different tiles (the *cut*
   arcs) are severed; every other arc stays.
2. Within one (movebound, tile) the remaining network is uncapacitated
   with non-negative costs, so its optimal flow decomposes into
   shortest source->sink paths.  Each tile therefore collapses to a
   plain transportation problem: sources are the tile's cell groups,
   sinks the tile's region capacities, and costs are Dijkstra
   shortest-path distances on the (movebound, tile) subgraph.
3. The tile solutions are read back onto the original arcs by walking
   the Dijkstra predecessor trees, producing a synthetic
   :class:`~repro.flows.mincostflow.FlowResult` over the *full* model
   that the unchanged realization pass consumes.

Cross-tile *reconciliation*: when some tile cannot hold its own supply
(or a source has no admissible sink inside its tile), a coarse FBP
model at tile granularity — the same builder, on a ``sx x sy`` grid
whose regions are the unions of the fine pieces — prescribes inter-tile
transfers.  Each coarse transfer is mapped onto one deterministic fine
cut arc (the one whose crossing point lies closest to the shared tile
boundary's midpoint) and injected into the tile transportation
problems as a virtual sink column (exporter) / virtual source row
(importer) priced at the Dijkstra distance to/from that arc's transit
nodes.

Contract (asserted by ``tests/test_sharding.py`` and stated in
``docs/performance.md``):

* **Zero-cut identity** — when the sharded run reports zero flow on
  cut arcs *and* zero flow on surviving external arcs, and the
  monolithic solve also routes no external flow, both paths hand the
  identical group membership to the identical final intra-window
  partitioning, so the resulting placements are byte-identical.
* **Bounded degradation** — when cuts do carry flow the sharded
  placement is an approximation; the report carries the cut flow area
  and relaxed-tile list so callers (and the scale benchmark) can gate
  on a bounded HPWL delta instead of silently accepting drift.
* Sharded solves are bit-identical across pool sizes: tile tasks are
  built and read back in deterministic tile order and the batch solve
  itself is pooled/serial bit-identical by the pool's own contract.

The path never makes a feasible instance infeasible: any situation the
tile decomposition cannot express (coarse model infeasible, a coarse
transfer with no matching fine cut arc, a tile transportation that
stays infeasible after the relaxation chain) falls back to the
monolithic solve and says so in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.fbp.model import OPPOSITE, ExternalArc, FBPModel, build_fbp_model
from repro.fbp.realization import cancel_external_cycles
from repro.flows import RELAX_CHAIN_WINDOW, FlowResult
from repro.flows.mincostflow import SolveStats
from repro.flows.tolerances import SIGNIFICANCE_EPS, scale_eps
from repro.geometry import RectSet
from repro.grid import Grid
from repro.grid.grid import WindowRegion
from repro.obs import incr, span


@dataclass
class ShardReport:
    """Accounting of one sharded solve (attached to the FBP report)."""

    tiles_x: int
    tiles_y: int
    num_tiles: int
    #: tiles that actually held supply or received a transfer
    active_tiles: int = 0
    #: fine external arcs severed by the tiling
    cut_arcs: int = 0
    #: flow the final result carries across tile cuts (0 = exact regime)
    cut_flow_area: float = 0.0
    #: flow on surviving (intra-tile) external arcs
    nonlocal_flow_area: float = 0.0
    #: tiles whose transportation needed relaxed capacities
    relaxed_tiles: List[int] = field(default_factory=list)
    #: whether the coarse tile-level reconciliation ran
    reconciled: bool = False
    #: inter-tile transfers prescribed by the coarse model
    reconcile_transfers: int = 0
    coarse_cost: float = float("nan")
    #: set when the sharded path gave up and solved monolithically
    fallback: Optional[str] = None


@dataclass
class _Transfer:
    """One coarse inter-tile transfer pinned to a fine cut arc."""

    bound: str
    src_tile: int
    dst_tile: int
    flow: float
    fine: ExternalArc

    @property
    def exit_key(self) -> tuple:
        return ("t", self.bound, self.fine.src_window, self.fine.direction)

    @property
    def entry_key(self) -> tuple:
        d = OPPOSITE[self.fine.direction]
        return ("t", self.bound, self.fine.dst_window, d)


class _TileGraph:
    """The (movebound, tile) subgraph in local-index form."""

    __slots__ = ("index", "edges", "dist", "pred", "src_row")

    def __init__(self) -> None:
        self.index: Dict[tuple, int] = {}
        #: (u, v) local pair -> (cost, arc id); parallel arcs keep the min
        self.edges: Dict[Tuple[int, int], Tuple[float, int]] = {}
        self.dist: Optional[np.ndarray] = None
        self.pred: Optional[np.ndarray] = None
        self.src_row: Dict[tuple, int] = {}

    def node(self, key: tuple) -> int:
        idx = self.index.get(key)
        if idx is None:
            idx = len(self.index)
            self.index[key] = idx
        return idx

    def add(self, tail: tuple, head: tuple, cost: float, aid: int) -> None:
        uv = (self.node(tail), self.node(head))
        prev = self.edges.get(uv)
        if prev is None or cost < prev[0]:
            self.edges[uv] = (cost, aid)

    def run_dijkstra(self, sources: Sequence[tuple]) -> None:
        """Shortest paths from every listed source key (skipping keys
        the graph never saw — their distances read as unreachable)."""
        self.src_row = {}
        present = [k for k in sources if k in self.index]
        n = len(self.index)
        if not present or not n:
            self.dist = None
            return
        rows = np.fromiter(
            (u for u, _v in self.edges), dtype=np.int64, count=len(self.edges)
        )
        cols = np.fromiter(
            (v for _u, v in self.edges), dtype=np.int64, count=len(self.edges)
        )
        costs = np.fromiter(
            (c for c, _a in self.edges.values()),
            dtype=np.float64,
            count=len(self.edges),
        )
        mat = csr_matrix((costs, (rows, cols)), shape=(n, n))
        idx = [self.index[k] for k in present]
        self.dist, self.pred = dijkstra(
            mat, directed=True, indices=idx, return_predecessors=True
        )
        self.src_row = {k: r for r, k in enumerate(present)}

    def distance(self, src: tuple, dst: tuple) -> float:
        if self.dist is None:
            return float("inf")
        row = self.src_row.get(src)
        tgt = self.index.get(dst)
        if row is None or tgt is None:
            return float("inf")
        return float(self.dist[row, tgt])

    def walk(
        self, src: tuple, dst: tuple, amount: float, flows: np.ndarray
    ) -> None:
        """Accumulate ``amount`` onto every arc of the shortest
        ``src -> dst`` path (predecessor walk, arc ids via edges)."""
        row = self.src_row[src]
        v = self.index[dst]
        o = self.index[src]
        pred = self.pred[row]
        while v != o:
            u = int(pred[v])
            if u < 0:  # disconnected — caller guaranteed finite distance
                raise RuntimeError("predecessor walk left the tree")
            flows[self.edges[(u, v)][1]] += amount
            v = u


class _NeedReconcile(Exception):
    """A tile cannot route its supply locally; coarse pass required."""


class _ShardFallback(Exception):
    """The tile decomposition cannot express this instance."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def tile_of_windows(grid: Grid, sx: int, sy: int) -> np.ndarray:
    """Tile index of every window for an ``sx x sy`` tiling."""
    out = np.empty(len(grid.windows), dtype=np.int64)
    for w in grid.windows:
        tx = w.ix * sx // grid.nx
        ty = w.iy * sy // grid.ny
        out[w.index] = ty * sx + tx
    return out


def _build_tile_graphs(
    model: FBPModel, wtile: np.ndarray, cut_ids: frozenset
) -> Dict[Tuple[str, int], _TileGraph]:
    """Group every surviving arc into its (movebound, tile) subgraph.

    Only cell-group and transit nodes ever appear as arc tails, and
    both carry their movebound and window in the key, so the owning
    subgraph is read straight off the tail.  All non-external arcs
    stay inside one window; external arcs were pre-classified.
    """
    graphs: Dict[Tuple[str, int], _TileGraph] = {}
    for aid, arc in enumerate(model.problem.arcs):
        if aid in cut_ids:
            continue
        tail = arc.tail
        key = (tail[1], int(wtile[tail[2]]))
        g = graphs.get(key)
        if g is None:
            g = graphs[key] = _TileGraph()
        g.add(tail, arc.head, arc.cost, aid)
    return graphs


def _coarse_tile_grid(grid: Grid, sx: int, sy: int, wtile: np.ndarray) -> Grid:
    """A ``sx x sy`` grid whose R_w are the unions of the fine window
    pieces — geometrically identical to re-clipping the decomposition,
    just split into more rectangles (areas, capacities, centroids and
    admissibility all agree)."""
    coarse = Grid(grid.die, sx, sy)
    per: Dict[Tuple[int, int], Tuple[object, List, List]] = {}
    for w in grid.windows:
        t = int(wtile[w.index])
        for wr in w.regions:
            entry = per.get((t, wr.region.index))
            if entry is None:
                entry = per[(t, wr.region.index)] = (wr.region, [], [])
            entry[1].extend(wr.area)
            entry[2].extend(wr.free_area)
    for (t, _ridx), (region, rects, free) in sorted(
        per.items(), key=lambda kv: kv[0]
    ):
        coarse.windows[t].regions.append(
            WindowRegion(t, region, RectSet(rects), RectSet(free))
        )
    return coarse


def _plan_transfers(
    model: FBPModel,
    wtile: np.ndarray,
    sx: int,
    sy: int,
    mcf_method: str,
    report: ShardReport,
) -> List[_Transfer]:
    """Solve the coarse tile-level FBP and pin each inter-tile flow to
    one deterministic fine cut arc."""
    grid = model.grid
    coarse = _coarse_tile_grid(grid, sx, sy, wtile)
    coarse_cw = wtile[model.cell_windows]
    coarse_model = build_fbp_model(
        model.netlist,
        model.bounds,
        coarse,
        model.density_target,
        cell_windows=coarse_cw,
    )
    coarse_result = coarse_model.solve(mcf_method)
    if not coarse_result.feasible:
        raise _ShardFallback("coarse tile model infeasible")
    report.coarse_cost = coarse_result.cost
    flows = cancel_external_cycles(coarse_model.external_flows(coarse_result))

    cut_by_pair: Dict[Tuple[str, int, int], List[ExternalArc]] = {}
    for ext in model.external_arcs:
        st, dt = int(wtile[ext.src_window]), int(wtile[ext.dst_window])
        if st != dt:
            cut_by_pair.setdefault((ext.bound, st, dt), []).append(ext)

    transfers: List[_Transfer] = []
    for carc, f in flows:
        cands = cut_by_pair.get((carc.bound, carc.src_window, carc.dst_window))
        if not cands:
            raise _ShardFallback(
                "coarse transfer has no matching fine cut arc"
            )
        mx, my = coarse.windows[carc.src_window].boundary_center(
            carc.direction
        )

        def rank(e: ExternalArc) -> tuple:
            cx, cy = grid.windows[e.src_window].boundary_center(e.direction)
            return (abs(cx - mx) + abs(cy - my), e.src_window, e.arc_id)

        fine = min(cands, key=rank)
        transfers.append(
            _Transfer(carc.bound, carc.src_window, carc.dst_window, f, fine)
        )
    transfers.sort(key=lambda tr: (tr.bound, tr.fine.arc_id))
    return transfers


@dataclass
class _TileTask:
    """One tile's transportation instance plus readback bookkeeping."""

    tile: int
    #: (bound, origin node key) per row — cell groups then virtual inflows
    rows: List[Tuple[str, tuple]]
    #: (bound filter, target node key, cut arc id or -1) per column
    cols: List[Tuple[Optional[str], tuple, int]]
    supplies: np.ndarray
    caps: np.ndarray
    costs: np.ndarray
    num_real_rows: int = 0


def _build_tasks(
    model: FBPModel,
    wtile: np.ndarray,
    graphs: Dict[Tuple[str, int], _TileGraph],
    transfers: List[_Transfer],
    reconciled: bool,
) -> List[_TileTask]:
    """Assemble every tile's transportation problem (deterministic tile
    order), pricing real sinks and virtual transfer columns with the
    Dijkstra distances."""
    tile_sources: Dict[int, List[Tuple[str, int]]] = {}
    for bound, widx in sorted(model.group_supply):
        tile_sources.setdefault(int(wtile[widx]), []).append((bound, widx))
    tile_sinks: Dict[int, List[Tuple[int, int]]] = {}
    for widx, ridx in sorted(model.region_capacity):
        tile_sinks.setdefault(int(wtile[widx]), []).append((widx, ridx))
    tile_out: Dict[int, List[_Transfer]] = {}
    tile_in: Dict[int, List[_Transfer]] = {}
    for tr in transfers:
        tile_out.setdefault(tr.src_tile, []).append(tr)
        tile_in.setdefault(tr.dst_tile, []).append(tr)

    # one Dijkstra sweep per (bound, tile): sources are the tile's cell
    # groups plus the entry transits of inbound transfers
    wanted: Dict[Tuple[str, int], List[tuple]] = {}
    for tile, groups in tile_sources.items():
        for bound, widx in groups:
            wanted.setdefault((bound, tile), []).append(("cg", bound, widx))
    for tr in transfers:
        wanted.setdefault((tr.bound, tr.dst_tile), []).append(tr.entry_key)
    for key, sources in wanted.items():
        g = graphs.get(key)
        if g is not None:
            g.run_dijkstra(sources)

    tiles = sorted(set(tile_sources) | set(tile_in))
    tasks: List[_TileTask] = []
    for tile in tiles:
        rows: List[Tuple[str, tuple]] = [
            (bound, ("cg", bound, widx))
            for bound, widx in tile_sources.get(tile, [])
        ]
        num_real = len(rows)
        supplies = [
            model.group_supply[(bound, widx)]
            for bound, widx in tile_sources.get(tile, [])
        ]
        for tr in tile_in.get(tile, []):
            rows.append((tr.bound, tr.entry_key))
            supplies.append(tr.flow)
        cols: List[Tuple[Optional[str], tuple, int]] = [
            (None, ("r", widx, ridx), -1)
            for widx, ridx in tile_sinks.get(tile, [])
        ]
        caps = [
            model.region_capacity[(widx, ridx)]
            for widx, ridx in tile_sinks.get(tile, [])
        ]
        for tr in tile_out.get(tile, []):
            cols.append((tr.bound, tr.exit_key, tr.fine.arc_id))
            caps.append(tr.flow)

        costs = np.full((len(rows), len(cols)), np.inf)
        for i, (bound, origin) in enumerate(rows):
            g = graphs.get((bound, tile))
            if g is None:
                continue
            for j, (col_bound, target, _aid) in enumerate(cols):
                if col_bound is not None and col_bound != bound:
                    continue
                costs[i, j] = g.distance(origin, target)
        finite_rows = np.isfinite(costs).any(axis=1)
        if not finite_rows[:num_real].all() and not reconciled:
            # a cell group with no admissible sink in its own tile —
            # only a cross-tile transfer can place it
            raise _NeedReconcile()
        tasks.append(
            _TileTask(
                tile,
                rows,
                cols,
                np.asarray(supplies, dtype=np.float64),
                np.asarray(caps, dtype=np.float64),
                costs,
                num_real,
            )
        )
    return tasks


def solve_sharded(
    model: FBPModel,
    shard_tiles: int,
    mcf_method: str = "auto",
    transport_method: str = "auto",
) -> Tuple[FlowResult, ShardReport]:
    """Solve the built FBP model tile-by-tile; see the module docstring
    for the exactness contract.  Returns the synthetic flow result over
    the full model plus the shard accounting."""
    grid = model.grid
    sx = max(1, min(int(shard_tiles), grid.nx))
    sy = max(1, min(int(shard_tiles), grid.ny))
    report = ShardReport(sx, sy, sx * sy)
    incr("shard.solves")
    if sx * sy <= 1:
        report.fallback = "single tile"
        return model.solve(mcf_method), report

    wtile = tile_of_windows(grid, sx, sy)
    cut_ids = frozenset(
        ext.arc_id
        for ext in model.external_arcs
        if wtile[ext.src_window] != wtile[ext.dst_window]
    )
    report.cut_arcs = len(cut_ids)
    incr("shard.cut_arcs", len(cut_ids))

    try:
        return _solve_sharded_impl(
            model, wtile, sx, sy, cut_ids, mcf_method, transport_method,
            report,
        )
    except _ShardFallback as exc:
        report.fallback = exc.reason
        incr("shard.fallbacks")
        return model.solve(mcf_method), report


def _solve_sharded_impl(
    model: FBPModel,
    wtile: np.ndarray,
    sx: int,
    sy: int,
    cut_ids: frozenset,
    mcf_method: str,
    transport_method: str,
    report: ShardReport,
) -> Tuple[FlowResult, ShardReport]:
    from repro.runstate.pool import solve_transport_batch

    with span("shard.graphs"):
        graphs = _build_tile_graphs(model, wtile, cut_ids)

    # aggregate precheck: a tile holding more supply than capacity can
    # only be solved with cross-tile transfers
    supply_by_tile: Dict[int, float] = {}
    for (bound, widx), s in model.group_supply.items():
        t = int(wtile[widx])
        supply_by_tile[t] = supply_by_tile.get(t, 0.0) + s
    cap_by_tile: Dict[int, float] = {}
    for (widx, ridx), c in model.region_capacity.items():
        t = int(wtile[widx])
        cap_by_tile[t] = cap_by_tile.get(t, 0.0) + c
    eps = scale_eps(max(supply_by_tile.values(), default=0.0))
    need_reconcile = any(
        s > cap_by_tile.get(t, 0.0) + eps
        for t, s in supply_by_tile.items()
    )

    transfers: List[_Transfer] = []
    while True:
        if need_reconcile and not report.reconciled:
            with span("shard.coarse"):
                transfers = _plan_transfers(
                    model, wtile, sx, sy, mcf_method, report
                )
            report.reconciled = True
            report.reconcile_transfers = len(transfers)
            incr("shard.reconciled_runs")
            incr("shard.reconcile_transfers", len(transfers))
        try:
            with span("shard.build"):
                tasks = _build_tasks(
                    model, wtile, graphs, transfers, report.reconciled
                )
            break
        except _NeedReconcile:
            need_reconcile = True

    report.active_tiles = len(tasks)
    incr("shard.tiles", len(tasks))

    with span("shard.solve"):
        solved = solve_transport_batch(
            [(t.supplies, t.caps, t.costs) for t in tasks],
            chain=RELAX_CHAIN_WINDOW,
            method=transport_method,
        )
    for task, (tr, stage) in zip(tasks, solved):
        if not tr.feasible:
            raise _ShardFallback(
                f"tile {task.tile} transportation infeasible"
            )
        if stage > 0:
            report.relaxed_tiles.append(task.tile)
    incr("shard.relaxed_tiles", len(report.relaxed_tiles))

    with span("shard.readback"):
        flows = np.zeros(len(model.problem.arcs), dtype=np.float64)
        routed = 0.0
        for task, (tres, _stage) in zip(tasks, solved):
            tol = scale_eps(
                float(np.max(tres.flow, initial=0.0)),
                base=SIGNIFICANCE_EPS,
            )
            routed += float(
                tres.flow[: task.num_real_rows].sum()
            )
            for i, (bound, origin) in enumerate(task.rows):
                row = tres.flow[i]
                g = graphs.get((bound, task.tile))
                if g is None:  # all-inf cost row: carries no flow
                    continue
                for j in np.nonzero(row > tol)[0]:
                    _cb, target, cut_aid = task.cols[j]
                    g.walk(origin, target, float(row[j]), flows)
                    if cut_aid >= 0:
                        flows[cut_aid] += float(row[j])

    if cut_ids:
        ids = np.fromiter(cut_ids, dtype=np.int64, count=len(cut_ids))
        report.cut_flow_area = float(flows[ids].sum())
    intra_ext = [
        ext.arc_id for ext in model.external_arcs
        if ext.arc_id not in cut_ids
    ]
    if intra_ext:
        report.nonlocal_flow_area = float(
            flows[np.asarray(intra_ext, dtype=np.int64)].sum()
        )
    incr("shard.cut_flow_area", report.cut_flow_area)

    arcs = model.problem.arcs
    arc_costs = np.fromiter(
        (a.cost for a in arcs), dtype=np.float64, count=len(arcs)
    )
    cost = float(np.dot(flows, arc_costs))
    result = FlowResult(
        feasible=True,
        cost=cost,
        flows=flows,
        arcs=list(arcs),
        routed=routed,
        stats=SolveStats(
            method="sharded",
            nodes=model.stats.num_nodes,
            arcs=model.stats.num_arcs,
            objective=cost,
            routed=routed,
        ),
    )
    return result, report
