"""Realization of the FBP flow (paper §IV.B, Figure 4).

A solved MinCostFlow prescribes, per movebound M and window w, how much
cell area must leave or enter over each window boundary.  Realization
turns this abstract flow into actual cell movement:

1. Directed cycles among flow-carrying external arcs are cancelled
   (they are cost-free at optimality, since all costs are >= 0).
2. The remaining external arcs are processed in topological order of
   the flow-carrying graph; an arc ``(v -> w, M, f)`` can only be
   realized once all external inflow of M into v has been realized, so
   enough M-cells are physically present in v.
3. For each arc, a *coarse window* (the 2x3 / 3x2 block around v and w)
   is refreshed by a local QP with all outside cells fixed — this is
   the paper's connectivity-aware selection — and then cells of M in v
   closest (after QP) to the crossing transit point are shipped to w
   until the arc's flow is covered.  Cells move whole, so the shipped
   area matches f up to half the largest cell size; the deviation is
   tracked and absorbed by capacity slack, mirroring the paper's
   "almost integral" guarantee.
4. Finally, every window partitions its cells among its regions R_w by
   the movebound-aware transportation of §III (the step that restores
   condition (1) inside each window) and cells are spread into their
   region's free area.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.flows import RELAX_CHAIN_WINDOW, FlowResult
from repro.geometry import Rect
from repro.grid import Grid
from repro.netlist import Netlist
from repro.obs import incr, span
from repro.qp import QPOptions, solve_qp
from repro.resilience.errors import PipelineStageError
from repro.resilience.faultinject import inject
from repro.fbp.model import ExternalArc, FBPModel


@dataclass
class RealizationResult:
    """Outcome and accounting of a realization pass."""

    arcs_realized: int = 0
    moved_area: float = 0.0
    #: total |shipped - prescribed| over all arcs (integrality slack)
    rounding_error: float = 0.0
    #: windows whose final transportation needed relaxed capacities
    relaxed_windows: List[int] = field(default_factory=list)
    #: cell -> (window index, region index) after final partitioning
    assignment: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    local_qp_calls: int = 0
    seconds: float = 0.0
    #: capacity overflow of the final assignment (whole-cell rounding
    #: debt; the paper's "almost integral" guarantee bounds max by one
    #: cell per window-region)
    total_overflow: float = 0.0
    max_overflow: float = 0.0


def cancel_external_cycles(
    flows: List[Tuple[ExternalArc, float]]
) -> List[Tuple[ExternalArc, float]]:
    """Cancel directed cycles among flow-carrying external arcs of the
    same movebound.  External arcs cost 0, so cancellation preserves
    optimality; it guarantees a topological order exists."""
    by_bound: Dict[str, List[List]] = {}
    for arc, f in flows:
        by_bound.setdefault(arc.bound, []).append([arc, f])

    out: List[Tuple[ExternalArc, float]] = []
    for bound, items in by_bound.items():
        # adjacency on windows
        changed = True
        while changed:
            changed = False
            adj: Dict[int, List[int]] = {}
            for idx, (arc, f) in enumerate(items):
                if f > 1e-9:
                    adj.setdefault(arc.src_window, []).append(idx)
            # DFS for a directed cycle
            color: Dict[int, int] = {}
            stack_edges: List[int] = []

            def dfs(u: int) -> Optional[List[int]]:
                color[u] = 1
                for idx in adj.get(u, ()):  # noqa: B023
                    arc, f = items[idx]
                    v = arc.dst_window
                    if color.get(v, 0) == 1:
                        # found cycle: unwind stack_edges back to v
                        cycle = [idx]
                        for eidx in reversed(stack_edges):
                            cycle.append(eidx)
                            if items[eidx][0].src_window == v:
                                break
                        return cycle
                    if color.get(v, 0) == 0:
                        stack_edges.append(idx)
                        found = dfs(v)
                        stack_edges.pop()
                        if found:
                            return found
                color[u] = 2
                return None

            for start in list(adj):
                if color.get(start, 0) == 0:
                    cycle = dfs(start)
                    if cycle:
                        delta = min(items[i][1] for i in cycle)
                        for i in cycle:
                            items[i][1] -= delta
                        changed = True
                        break
        out.extend(
            (arc, f) for arc, f in items if f > 1e-9
        )
    return out


def topological_arc_order(
    flows: List[Tuple[ExternalArc, float]]
) -> List[Tuple[ExternalArc, float]]:
    """Order external arcs so every arc appears after all arcs flowing
    into its source window (per movebound).  Requires acyclic input
    (run :func:`cancel_external_cycles` first)."""
    order: List[Tuple[ExternalArc, float]] = []
    by_bound: Dict[str, List[Tuple[ExternalArc, float]]] = {}
    for arc, f in flows:
        by_bound.setdefault(arc.bound, []).append((arc, f))
    for bound in sorted(by_bound):
        items = by_bound[bound]
        indegree: Dict[int, int] = {}
        outgoing: Dict[int, List[int]] = {}
        for idx, (arc, _f) in enumerate(items):
            indegree.setdefault(arc.src_window, 0)
            indegree[arc.dst_window] = indegree.get(arc.dst_window, 0) + 1
            outgoing.setdefault(arc.src_window, []).append(idx)
        ready = sorted(w for w, d in indegree.items() if d == 0)
        emitted = [False] * len(items)
        queue = list(ready)
        while queue:
            w = queue.pop(0)
            for idx in outgoing.get(w, ()):  # all arcs out of w are ready
                if emitted[idx]:
                    continue
                emitted[idx] = True
                arc, f = items[idx]
                order.append((arc, f))
                indegree[arc.dst_window] -= 1
                if indegree[arc.dst_window] == 0:
                    queue.append(arc.dst_window)
        if not all(emitted):
            raise PipelineStageError(
                f"external flow of movebound {bound!r} is cyclic; "
                "run cancel_external_cycles first",
                stage="fbp.realize",
            )
    return order


def _crossing_point(grid: Grid, arc: ExternalArc) -> Tuple[float, float]:
    """The boundary point where the arc's flow crosses into the target."""
    return grid.windows[arc.src_window].boundary_center(arc.direction)


def _entry_position(
    grid: Grid, arc: ExternalArc, cell_y: float, cell_x: float
) -> Tuple[float, float]:
    """Landing position just inside the destination window, preserving
    the coordinate parallel to the crossed boundary."""
    dst = grid.windows[arc.dst_window].rect
    pad_x = min(dst.width * 0.05, 1.0)
    pad_y = min(dst.height * 0.05, 1.0)
    if arc.direction == "E":
        return (dst.x_lo + pad_x, min(max(cell_y, dst.y_lo), dst.y_hi))
    if arc.direction == "W":
        return (dst.x_hi - pad_x, min(max(cell_y, dst.y_lo), dst.y_hi))
    if arc.direction == "N":
        return (min(max(cell_x, dst.x_lo), dst.x_hi), dst.y_lo + pad_y)
    return (min(max(cell_x, dst.x_lo), dst.x_hi), dst.y_hi - pad_y)


def _spread_into_rects(
    netlist: Netlist,
    cell_indices: List[int],
    rects: Sequence[Rect],
) -> None:
    """Place a group of cells inside a set of rectangles, allocating
    cells to rectangles proportionally to area and rescaling relative
    positions so ordering is preserved."""
    if not len(cell_indices) or not rects:
        return
    rects = sorted(rects, key=lambda r: (r.x_lo, r.y_lo))
    areas = np.array([r.area for r in rects])
    total = areas.sum()
    if total <= 0:
        areas = np.ones(len(rects))
        total = float(len(rects))
    # order cells by x to keep left-to-right structure (lexsort is
    # stable, so coincident positions keep the incoming order — same
    # tie-break as sorting on the (x, y) tuple)
    ci = np.asarray(cell_indices, dtype=np.int64)
    _mv, half_w, half_h = netlist._dim_arrays()
    ordered = ci[np.lexsort((netlist.y[ci], netlist.x[ci]))]
    counts = np.floor(areas / total * len(ordered)).astype(int)
    while counts.sum() < len(ordered):
        counts[int(np.argmax(areas / np.maximum(counts, 1)))] += 1
    pos = 0
    for rect, count in zip(rects, counts):
        group = ordered[pos : pos + count]
        pos += count
        if not len(group):
            continue
        # Rank-based ordered spreading: cells are laid out on a grid of
        # columns (by x-rank) and rows within each column (by y-rank).
        # This preserves the relative order of the incoming placement —
        # the information that matters at window granularity — while
        # guaranteeing an even spread even when positions coincide
        # (local QPs can collapse a dense group onto a point).
        n = len(group)
        aspect = rect.width / max(rect.height, 1e-9)
        cols = min(max(int(round(math.sqrt(n * aspect))), 1), n)
        rows_per_col = math.ceil(n / cols)
        by_x = group[np.lexsort((group, netlist.y[group], netlist.x[group]))]
        for col in range(cols):
            column = by_x[col * rows_per_col : (col + 1) * rows_per_col]
            column = column[
                np.lexsort((column, netlist.x[column], netlist.y[column]))
            ]
            fx = (col + 0.5) / cols
            fy = (np.arange(len(column)) + 0.5) / len(column)
            hw = np.minimum(half_w[column], rect.width / 2)
            hh = np.minimum(half_h[column], rect.height / 2)
            netlist.x[column] = rect.x_lo + hw + fx * np.maximum(
                rect.width - 2 * hw, 0.0
            )
            netlist.y[column] = rect.y_lo + hh + fy * np.maximum(
                rect.height - 2 * hh, 0.0
            )


def realize_flow(
    model: FBPModel,
    result: FlowResult,
    qp_options: Optional[QPOptions] = None,
    run_local_qp: bool = True,
    local_qp_cell_limit: int = 500,
    transport_method: str = "auto",
    realize_tiles: Optional[int] = None,
) -> RealizationResult:
    """Execute the full realization pass on the model's netlist.

    Mutates cell positions; returns accounting plus the final
    cell -> (window, region) assignment.  ``transport_method`` selects
    the backend of the final per-window transportation solves
    (``"ns"`` warm-starts relaxation-chain re-solves).

    ``realize_tiles`` controls the tile-parallel dispatch of the final
    per-window partitioning when a worker pool is active: ``None``
    picks ``min(8, nx, ny)`` tiles per axis, ``0``/``1`` force the
    in-process serial path.  Output bits are identical either way.
    """
    inject("stage.fbp.realize")
    with span("realize") as sp:
        out = _realize_flow_impl(
            model,
            result,
            qp_options,
            run_local_qp,
            local_qp_cell_limit,
            transport_method,
            realize_tiles,
        )
    out.seconds = sp.wall_s
    incr("realize.arcs_realized", out.arcs_realized)
    incr("realize.local_qp_calls", out.local_qp_calls)
    incr("realize.moved_area", out.moved_area)
    return out


def _realize_flow_impl(
    model: FBPModel,
    result: FlowResult,
    qp_options: Optional[QPOptions],
    run_local_qp: bool,
    local_qp_cell_limit: int,
    transport_method: str = "auto",
    realize_tiles: Optional[int] = None,
) -> RealizationResult:
    netlist = model.netlist
    grid = model.grid
    out = RealizationResult()
    qp_opts = qp_options or QPOptions()

    cell_window = model.cell_windows.copy()
    # (bound, window) -> member cells, kept current while moving.
    # Values start as the model's (immutable) lists and are copied into
    # sets only when an arc actually moves a cell out of or into the
    # group — the common zero-external-flow pass never pays the copy.
    members: Dict[Tuple[str, int], object] = dict(model.group_cells)

    def _mutable(key: Tuple[str, int]) -> Set[int]:
        cur = members.get(key)
        if not isinstance(cur, set):
            cur = set(cur) if cur is not None else set()
            members[key] = cur
        return cur

    # nets incident to each cell, for cheap local QPs — derived lazily:
    # it is expensive at scale and only needed when a QP actually runs
    nets_of_cell = None
    # per-cell areas; the shipping loop wants plain floats (identical
    # Cell.size bits) but only pays the list conversion when there is
    # flow to ship
    sizes = netlist.cell_sizes()
    cell_size: Optional[List[float]] = None

    flows = cancel_external_cycles(model.external_flows(result))
    if flows:
        cell_size = sizes.tolist()

    # Group arcs into rounds of independent realizations (disjoint
    # coarse windows, dependencies respected) — the paper's parallel
    # schedule.  One local QP covers a whole round, since its blocks
    # are disjoint: the joint system is block-diagonal, and solving it
    # once is cheaper than one solve per arc.
    from repro.fbp.schedule import compute_schedule

    schedule = compute_schedule(model, flows)
    flow_of = {arc.arc_id: f for arc, f in flows}

    for round_arcs in schedule.rounds:
        if run_local_qp and round_arcs:
            in_block = np.zeros(netlist.num_cells, dtype=bool)
            block_ids: Set[int] = set()
            for arc in round_arcs:
                for w in grid.coarse_block(
                    grid.windows[arc.src_window],
                    grid.windows[arc.dst_window],
                ):
                    block_ids.add(w.index)
            for key, cells in members.items():
                if key[1] in block_ids:
                    for c in cells:
                        in_block[c] = True
            n_in_block = int(in_block.sum())
            if 0 < n_in_block <= local_qp_cell_limit:
                if nets_of_cell is None:
                    nets_of_cell = netlist.nets_of_cell()
                net_ids: Set[int] = set()
                for c in np.nonzero(in_block)[0]:
                    net_ids.update(nets_of_cell[int(c)])
                local_nets = [netlist.nets[i] for i in sorted(net_ids)]
                with span("realize.local_qp"):
                    solve_qp(
                        netlist,
                        qp_opts,
                        movable_mask=in_block,
                        nets=local_nets,
                    )
                out.local_qp_calls += 1

        for arc in round_arcs:
            f = flow_of[arc.arc_id]
            key_src = (arc.bound, arc.src_window)
            candidates = sorted(members.get(key_src, ()))
            if not candidates:
                out.rounding_error += f
                continue
            # ship cells closest to the crossing point until f covered
            # (vectorized distance keys + stable argsort: same floats,
            # same tie-break as the scalar key sort over ascending ids)
            cx, cy = _crossing_point(grid, arc)
            cand = np.asarray(candidates, dtype=np.int64)
            dist = np.abs(netlist.x[cand] - cx) + np.abs(
                netlist.y[cand] - cy
            )
            candidates = cand[np.argsort(dist, kind="stable")].tolist()
            shipped = 0.0
            for i in candidates:
                size = cell_size[i]
                if shipped >= f:
                    break
                if shipped + size - f > f - shipped:
                    # overshooting hurts more than stopping short
                    break
                _mutable(key_src).discard(i)
                key_dst = (arc.bound, arc.dst_window)
                _mutable(key_dst).add(i)
                cell_window[i] = arc.dst_window
                nx_, ny_ = _entry_position(
                    grid, arc, netlist.y[i], netlist.x[i]
                )
                netlist.x[i] = nx_
                netlist.y[i] = ny_
                shipped += size
            out.moved_area += shipped
            out.rounding_error += abs(shipped - f)
            out.arcs_realized += 1

    # ------------------------------------------------------------------
    # final intra-window partitioning (§III, with movebound costs)
    # ------------------------------------------------------------------
    # group member cells per home window as (cell array, bound code)
    # parts; the per-cell python walk of the former implementation only
    # survives for the rare stranded groups (window with no admissible
    # region), everything else is bulk array work
    window_parts: Dict[int, List[Tuple[np.ndarray, int]]] = {}
    bound_code: Dict[str, int] = {}
    bound_names: List[str] = []
    # admissible (window, region) targets per bound, for stranding repair
    admissible_targets: Dict[str, List[Tuple[int, object]]] = {}
    for (bound, widx), cells in members.items():
        if not len(cells):
            continue
        code = bound_code.get(bound)
        if code is None:
            code = len(bound_names)
            bound_code[bound] = code
            bound_names.append(bound)
        has_admissible = any(
            wr.admits(bound)
            and model.region_capacity.get(
                (widx, wr.region.index), 0.0
            )
            > 0
            for wr in grid.windows[widx].regions
        )
        if has_admissible:
            arr = np.fromiter(cells, dtype=np.int64, count=len(cells))
            window_parts.setdefault(widx, []).append((arr, code))
            continue
        # whole-cell rounding stranded these cells in a window with no
        # admissible region; send each to the nearest admissible one
        if bound not in admissible_targets:
            targets = []
            for w in grid:
                for wr in w.regions:
                    if (
                        wr.admits(bound)
                        and model.region_capacity.get(
                            (w.index, wr.region.index), 0.0
                        )
                        > 0
                    ):
                        targets.append((w.index, wr))
            admissible_targets[bound] = targets
        for c in cells:
            home = widx
            best = None
            for twidx, wr in admissible_targets[bound]:
                d = wr.free_area.distance_to_point(
                    netlist.x[c], netlist.y[c]
                ) if not wr.free_area.is_empty else float("inf")
                if best is None or d < best[0]:
                    best = (d, twidx)
            if best is not None:
                home = best[1]
                out.rounding_error += float(sizes[c])
            window_parts.setdefault(home, []).append(
                (np.array([c], dtype=np.int64), code)
            )

    with span("realize.partition"):
        _partition_windows(
            model,
            out,
            window_parts,
            bound_names,
            method=transport_method,
            realize_tiles=realize_tiles,
        )

    netlist.clamp_into_die()
    return out


def _partition_windows(
    model: FBPModel,
    out: RealizationResult,
    window_parts: Dict[int, List[Tuple[np.ndarray, int]]],
    bound_names: Sequence[str],
    method: str = "auto",
    realize_tiles: Optional[int] = None,
) -> None:
    """Final intra-window partitioning (§III) of the realization.

    Each window becomes a self-contained
    :class:`~repro.fbp.realize_windows.WindowSpec` (built in
    deterministic window order); specs are realized — tile-parallel
    through the supervised worker pool when one is active, serially
    otherwise; both paths are bit-identical — and the outcomes are
    merged back in sorted window order, so neither the tiling nor the
    pool size can affect output bits.
    """
    from repro.fbp.realize_windows import build_window_specs
    from repro.runstate.pool import solve_realize_batch

    netlist = model.netlist
    grid = model.grid

    # one (cells, codes) entry per window, cells ascending
    entries: List[Tuple[int, np.ndarray, np.ndarray]] = []
    for widx in sorted(window_parts):
        parts = window_parts[widx]
        ids = np.concatenate([a for a, _c in parts])
        codes = np.concatenate(
            [np.full(len(a), c, dtype=np.int64) for a, c in parts]
        )
        order = np.argsort(ids)
        entries.append((widx, ids[order], codes[order]))

    with span("realize.specs"):
        specs, skipped = build_window_specs(model, entries, bound_names)
    # windows with no region capacity: relaxed, cells left in place
    out.relaxed_windows.extend(skipped)
    incr("realize.windows", len(specs))
    incr(
        "realize.trivial_windows", sum(1 for s in specs if s.trivial)
    )

    with span("realize.solve"):
        outcomes = solve_realize_batch(
            specs,
            grid,
            chain=RELAX_CHAIN_WINDOW,
            method=method,
            tiles=realize_tiles,
        )

    if os.environ.get("REPRO_VERIFY_REALIZE"):
        _verify_realize(specs, outcomes, method)

    with span("realize.merge"):
        for spec, oc in zip(specs, outcomes):
            netlist.x[oc.cells] = oc.new_x
            netlist.y[oc.cells] = oc.new_y
            if oc.stage > 0:
                out.relaxed_windows.append(oc.widx)
            region_idx = np.asarray(spec.region_idx, dtype=np.int64)
            ridx = region_idx[oc.assignment]
            out.assignment.update(
                zip(
                    oc.cells.tolist(),
                    zip([oc.widx] * len(oc.cells), ridx.tolist()),
                )
            )
            # overflow accounting of the final assignment — same float
            # accumulation order as the former global dict walk (cells
            # ascending within the window, regions in first-appearance
            # order, one window's regions never split across windows)
            loads = np.zeros(len(spec.caps))
            np.add.at(loads, oc.assignment, spec.sizes)
            _vals, first = np.unique(oc.assignment, return_index=True)
            for b in oc.assignment[np.sort(first)]:
                over = float(loads[b]) - model.region_capacity.get(
                    (oc.widx, spec.region_idx[int(b)]), 0.0
                )
                if over > 0:
                    out.total_overflow += over
                    out.max_overflow = max(out.max_overflow, over)


def _verify_realize(specs, outcomes, method: str) -> None:
    """Shadow mode (``REPRO_VERIFY_REALIZE=1``): re-realize every
    window serially through the general LP path (fast path disabled)
    and require bitwise-identical positions and assignments.

    The reported relaxation *stage* is deliberately not compared: at
    exact capacity boundaries the closed-form feasibility check and the
    LP solver's tolerance can disagree on the stage while producing the
    same placement."""
    from repro.fbp.realize_windows import realize_unit

    ref = realize_unit(
        specs,
        chain=RELAX_CHAIN_WINDOW,
        method=method,
        use_fast_path=False,
    )
    for oc, rf in zip(outcomes, ref):
        if (
            oc.new_x.tobytes() != rf.new_x.tobytes()
            or oc.new_y.tobytes() != rf.new_y.tobytes()
            or not np.array_equal(oc.assignment, rf.assignment)
        ):
            raise PipelineStageError(
                "realization shadow verify mismatch in window "
                f"{oc.widx}",
                stage="fbp.realize",
            )
    incr("realize.verified", len(specs))
