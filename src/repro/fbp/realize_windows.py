"""Tile-parallel, vectorized window realization (paper §III / §IV.B).

The final step of realization partitions every window's cells among
its admissible regions (a small transportation problem per window) and
spreads each region's cells into its free rectangles.  Those per-window
jobs are *independent* — a window touches only its own cells and its
own region geometry — so this module packages each window as a
self-contained, picklable :class:`WindowSpec` and realizes batches of
specs with a pure function, :func:`realize_unit`.  That enables:

* **tile-parallel dispatch** — specs grouped by the same spatial
  window-tiles as :func:`repro.fbp.sharding.tile_of_windows` are
  shipped as units through the supervised
  :class:`~repro.runstate.pool.WindowSolverPool`, and the merged
  output is bit-identical to the serial path at any pool size (the
  merge is in sorted window order, independent of tiling or schedule),
* **a closed-form fast path** — the common single-region window whose
  region admits every cell present needs no LP at all: the
  transportation assignment is forced (everything goes to the one
  region) and the relaxation stage follows from comparing total supply
  against the scaled capacity.  The resulting positions and
  assignments are bit-identical to solving the LP (rounding of a
  one-column flow can only assign column 0); only the *reported*
  relaxation stage could differ, and then only when total supply sits
  within the LP solver's feasibility tolerance of the exact capacity
  boundary,
* **structure-of-arrays inner loops** — candidate scoring (region
  distance costs), admissibility masks, and the rank-based spreading
  of cells into rectangles run as numpy batch operations whose
  floating-point expressions reproduce the scalar reference
  (`realization._spread_into_rects`) bit for bit.

``REPRO_VERIFY_REALIZE=1`` arms a shadow mode: every realized batch is
recomputed through the general LP path (fast path disabled) and the
positions and assignments are compared bitwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.flows import RELAX_CHAIN_WINDOW, round_almost_integral
from repro.flows.transportation import solve_transportation_with_relaxation
from repro.geometry import active_cache
from repro.obs import incr

__all__ = [
    "WindowSpec",
    "WindowOutcome",
    "build_window_specs",
    "realize_unit",
    "tile_units",
]


@dataclass
class WindowSpec:
    """One window's realization job, closed over everything it needs.

    Arrays are aligned with ``cells`` (ascending cell ids); region
    arrays/tuples follow the window's kept-region order (regions with
    zero capacity are dropped before the spec is built, exactly as the
    serial reference filters them).
    """

    widx: int
    cells: np.ndarray  # int64, ascending
    codes: np.ndarray  # int64 index into the run's bound-name table
    xs: np.ndarray
    ys: np.ndarray
    sizes: np.ndarray
    half_w: np.ndarray
    half_h: np.ndarray
    region_idx: Tuple[int, ...]
    caps: np.ndarray
    #: (num bound codes, num regions) admissibility matrix
    admits: np.ndarray
    #: per region: (R, 4) array of free rects as [x_lo, y_lo, x_hi, y_hi]
    free_rects: Tuple[np.ndarray, ...]
    #: per region: rects used for spreading (free area, else region area)
    spread_rects: Tuple[np.ndarray, ...]
    #: single admissible region — assignment is forced, no LP needed
    trivial: bool


@dataclass
class WindowOutcome:
    """Result of realizing one :class:`WindowSpec`."""

    widx: int
    cells: np.ndarray
    new_x: np.ndarray
    new_y: np.ndarray
    #: per cell: position into ``spec.region_idx``
    assignment: np.ndarray
    stage: int


def _rects_array(rects) -> np.ndarray:
    """Pack an iterable of :class:`~repro.geometry.Rect` into an
    (R, 4) float64 array, preserving iteration order (which is what
    fixes the tie-break order of the distance minimum and the spread)."""
    rects = tuple(rects)
    out = np.empty((len(rects), 4), dtype=np.float64)
    for i, r in enumerate(rects):
        out[i, 0] = r.x_lo
        out[i, 1] = r.y_lo
        out[i, 2] = r.x_hi
        out[i, 3] = r.y_hi
    return out


def _window_rects(window, cache_key) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """(free_rects, spread_rects) arrays per region index of a window.

    Pure function of the instance geometry, so it is memoized in the
    active :class:`~repro.geometry.GeometryCache` (config-hash scoped:
    any instance/option change that could alter region geometry changes
    the scope, so stale entries are never looked up).
    """
    cache = active_cache()
    if cache is not None:
        hit = cache.get(cache_key)
        if hit is not None:
            return hit
    out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for wr in window.regions:
        free = _rects_array(wr.free_area)
        spread = free if len(free) else _rects_array(wr.area)
        out[wr.region.index] = (free, spread)
    if cache is not None:
        cache.put(cache_key, out)
    return out


def build_window_specs(
    model,
    entries: Sequence[Tuple[int, np.ndarray, np.ndarray]],
    bound_names: Sequence[str],
) -> Tuple[List[WindowSpec], List[int]]:
    """Build one :class:`WindowSpec` per window entry.

    ``entries`` is ``(widx, cells, codes)`` in ascending window order
    with ``cells`` ascending; ``codes`` index ``bound_names``.  Returns
    the specs plus the windows skipped because no region has capacity
    (the serial reference marks those relaxed and leaves their cells in
    place).
    """
    netlist = model.netlist
    grid = model.grid
    sizes_all = netlist.cell_sizes()
    _mv, half_w_all, half_h_all = netlist._dim_arrays()
    specs: List[WindowSpec] = []
    skipped: List[int] = []
    admit_memo: Dict[Tuple[int, int], bool] = {}
    for widx, cells, codes in entries:
        window = grid.windows[widx]
        regions = [
            wr
            for wr in window.regions
            if model.region_capacity.get((widx, wr.region.index), 0.0) > 0
        ]
        if not regions:
            skipped.append(widx)
            continue
        caps = np.array(
            [
                model.region_capacity[(widx, wr.region.index)]
                for wr in regions
            ]
        )
        rect_map = _window_rects(
            window, ("realize_rects", grid.nx, grid.ny, widx)
        )
        free_rects = tuple(
            rect_map[wr.region.index][0] for wr in regions
        )
        spread_rects = tuple(
            rect_map[wr.region.index][1] for wr in regions
        )
        admits = np.empty((len(bound_names), len(regions)), dtype=bool)
        present = np.unique(codes)
        for b, wr in enumerate(regions):
            ridx = wr.region.index
            for code in present:
                key = (ridx, int(code))
                ok = admit_memo.get(key)
                if ok is None:
                    ok = bool(wr.admits(bound_names[int(code)]))
                    admit_memo[key] = ok
                admits[int(code), b] = ok
        trivial = (
            len(regions) == 1
            and len(free_rects[0]) > 0
            and bool(admits[present, 0].all())
        )
        specs.append(
            WindowSpec(
                widx=widx,
                cells=cells,
                codes=codes,
                xs=np.asarray(netlist.x[cells], dtype=np.float64),
                ys=np.asarray(netlist.y[cells], dtype=np.float64),
                sizes=sizes_all[cells],
                half_w=half_w_all[cells],
                half_h=half_h_all[cells],
                region_idx=tuple(wr.region.index for wr in regions),
                caps=caps,
                admits=admits,
                free_rects=free_rects,
                spread_rects=spread_rects,
                trivial=trivial,
            )
        )
    return specs, skipped


def _rect_distances(
    xs: np.ndarray, ys: np.ndarray, rects: np.ndarray
) -> np.ndarray:
    """L1 distance of each point to a union of rectangles — the same
    clamp arithmetic and rect order as
    :meth:`repro.geometry.RectSet.distances_to_points`, so identical
    bits."""
    best = np.full(xs.shape, np.inf)
    for r in rects:
        d = np.abs(np.clip(xs, r[0], r[2]) - xs) + np.abs(
            np.clip(ys, r[1], r[3]) - ys
        )
        np.minimum(best, d, out=best)
    return best


def _build_costs(spec: WindowSpec) -> np.ndarray:
    """The window's (cells x regions) transportation cost matrix —
    same values as the serial reference's per-region distance passes."""
    costs = np.full((len(spec.cells), len(spec.caps)), np.inf)
    for b in range(len(spec.caps)):
        rects = spec.free_rects[b]
        if not len(rects):
            continue
        mask = spec.admits[spec.codes, b]
        if not mask.any():
            continue
        d = _rect_distances(spec.xs, spec.ys, rects)
        costs[mask, b] = d[mask]
    return costs


def _trivial_stage(
    total, cap, chain: Tuple[Tuple[float, float], ...]
) -> Optional[int]:
    """First relaxation stage whose scaled capacity covers ``total``
    (the closed form of a one-column transportation feasibility check:
    ``cap * mult + frac * total`` is exactly the capacity the solver
    builds at that stage)."""
    for stage, (mult, frac) in enumerate(chain):
        if total <= cap * mult + frac * total:
            return stage
    return None


def _spread_group(
    spec: WindowSpec,
    local: np.ndarray,
    rects: np.ndarray,
    new_x: np.ndarray,
    new_y: np.ndarray,
) -> None:
    """Spread one region's cells (``local`` positions into the spec's
    arrays) over ``rects``, writing into ``new_x``/``new_y``.

    Bit-identical vectorization of
    :func:`repro.fbp.realization._spread_into_rects`: same rect order,
    same stable lexsort keys (global ids break ties exactly like the
    reference's per-column sorts), same float expressions.
    """
    if not len(local) or not len(rects):
        return
    order = np.lexsort((rects[:, 1], rects[:, 0]))
    rects = rects[order]
    widths = rects[:, 2] - rects[:, 0]
    heights = rects[:, 3] - rects[:, 1]
    areas = widths * heights
    total = areas.sum()
    if total <= 0:
        areas = np.ones(len(rects))
        total = float(len(rects))
    ids = spec.cells[local]
    xs = spec.xs[local]
    ys = spec.ys[local]
    ordered = np.lexsort((ys, xs))
    counts = np.floor(areas / total * len(ordered)).astype(int)
    while counts.sum() < len(ordered):
        counts[int(np.argmax(areas / np.maximum(counts, 1)))] += 1
    pos = 0
    for ri in range(len(rects)):
        count = counts[ri]
        sel = ordered[pos : pos + count]
        pos += count
        n = len(sel)
        if not n:
            continue
        width = widths[ri]
        height = heights[ri]
        aspect = width / max(height, 1e-9)
        cols = min(max(int(round(math.sqrt(n * aspect))), 1), n)
        rows_per_col = math.ceil(n / cols)
        gids = ids[sel]
        gx = xs[sel]
        gy = ys[sel]
        # reference: by_x = group[lexsort((ids, y, x))], then each
        # column re-sorted by lexsort((ids, x, y)).  Splitting by_x
        # into columns and sorting within each equals one lexsort with
        # the column index as the primary key.
        by_x = np.lexsort((gids, gy, gx))
        col_of = np.arange(n) // rows_per_col
        within = np.lexsort(
            (gids[by_x], gx[by_x], gy[by_x], col_of)
        )
        sorted_sel = sel[by_x[within]]
        col_sorted = col_of[within]
        ncols = int(col_of[-1]) + 1
        col_len = np.bincount(col_of, minlength=ncols)
        col_start = np.concatenate(([0], np.cumsum(col_len)))[:-1]
        rank = np.arange(n) - col_start[col_sorted]
        fx = (col_sorted + 0.5) / cols
        fy = (rank + 0.5) / col_len[col_sorted]
        hw = np.minimum(spec.half_w[local[sorted_sel]], width / 2)
        hh = np.minimum(spec.half_h[local[sorted_sel]], height / 2)
        new_x[local[sorted_sel]] = rects[ri, 0] + hw + fx * np.maximum(
            width - 2 * hw, 0.0
        )
        new_y[local[sorted_sel]] = rects[ri, 1] + hh + fy * np.maximum(
            height - 2 * hh, 0.0
        )


def _solve_tasks(tasks, chain, method):
    """Serially solve the unit's general transportation tasks — the
    same routing as the serial arm of
    :func:`repro.runstate.pool.solve_transport_batch` (the batched
    flow backend's per-task bit-identity contract makes the bucket
    composition irrelevant)."""
    from repro.flows.batch import (
        batched_backend_active,
        solve_transportation_batched,
    )

    if batched_backend_active(method) and len(tasks) > 1:
        return solve_transportation_batched(
            tasks, chain=chain, method=method
        )
    return [
        solve_transportation_with_relaxation(
            supplies, caps, costs, chain=chain, method=method
        )
        for supplies, caps, costs in tasks
    ]


def realize_unit(
    specs: Sequence[WindowSpec],
    chain: Tuple[Tuple[float, float], ...] = RELAX_CHAIN_WINDOW,
    method: str = "auto",
    use_fast_path: bool = True,
) -> List[WindowOutcome]:
    """Realize a batch of window specs; pure function of its inputs.

    Runs inside pool workers and in the supervisor's serial path alike,
    so both produce identical bits.  ``use_fast_path=False`` forces
    every window through the general LP route (the shadow-verify
    reference).
    """
    plans: List[Tuple[WindowSpec, Optional[int], Optional[np.ndarray]]] = []
    general: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for spec in specs:
        stage = None
        costs = None
        if use_fast_path and spec.trivial:
            stage = _trivial_stage(
                spec.sizes.sum(), spec.caps[0], chain
            )
        if stage is None:
            costs = _build_costs(spec)
            general.append((spec.sizes, spec.caps, costs))
        plans.append((spec, stage, costs))
    solved = _solve_tasks(general, chain, method) if general else []
    out: List[WindowOutcome] = []
    g = 0
    for spec, stage, costs in plans:
        if stage is None:
            tr, stage = solved[g]
            g += 1
            assignment, _overflow = round_almost_integral(
                tr, spec.sizes, spec.caps, costs
            )
            assignment = np.asarray(assignment, dtype=np.int64)
        else:
            assignment = np.zeros(len(spec.cells), dtype=np.int64)
        new_x = spec.xs.copy()
        new_y = spec.ys.copy()
        # spread per region, regions in first-appearance (cell) order —
        # the groups are disjoint so the order only mirrors the
        # reference's dict iteration
        _vals, first = np.unique(assignment, return_index=True)
        for b in assignment[np.sort(first)]:
            _spread_group(
                spec,
                np.nonzero(assignment == b)[0],
                spec.spread_rects[int(b)],
                new_x,
                new_y,
            )
        out.append(
            WindowOutcome(
                widx=spec.widx,
                cells=spec.cells,
                new_x=new_x,
                new_y=new_y,
                assignment=assignment,
                stage=int(stage),
            )
        )
    return out


def tile_units(
    specs: Sequence[WindowSpec], grid, tiles: int
) -> List[List[WindowSpec]]:
    """Group specs into dispatch units by spatial window tile — the
    same ``tiles x tiles`` decomposition as the sharded flow solve.
    Units are ordered by tile id; the merge sorts outcomes back into
    window order, so the tiling never affects output bits."""
    from repro.fbp.sharding import tile_of_windows

    wtile = tile_of_windows(grid, tiles, tiles)
    units: Dict[int, List[WindowSpec]] = {}
    for spec in specs:
        units.setdefault(int(wtile[spec.widx]), []).append(spec)
    grouped = [units[t] for t in sorted(units)]
    incr("realize.tile_units", len(grouped))
    return grouped
