"""Synthetic netlist generation.

Cells get *logical coordinates* in the unit square; nets connect small
groups of logically nearby cells (plus a tail of global nets), which
gives placements the locality structure real circuits have — placers
can actually win or lose wirelength on these instances, unlike on
uniform random hypergraphs.  Boundary pads anchor the QP.

The generator is deterministic in (spec, seed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry import Rect
from repro.netlist import Netlist, Pin


@dataclass
class NetlistSpec:
    """Parameters of a synthetic instance."""

    name: str
    num_cells: int
    utilization: float = 0.55  # movable area / free die area
    nets_per_cell: float = 1.1
    avg_degree: float = 3.4  # mean net degree (2-pin heavy)
    max_degree: int = 12
    global_net_fraction: float = 0.04
    num_pads: int = 32
    row_height: float = 1.0
    site_width: float = 0.25
    cell_widths: Tuple[float, ...] = (1.0, 1.0, 1.5, 2.0, 3.0)
    #: number of movable macros (mixed-size instances, cf. ISPD nb1)
    num_macros: int = 0
    macro_size: Tuple[float, float] = (8.0, 6.0)
    #: fixed blockages as fractions of the die (x, y, w, h)
    blockage_fracs: Tuple[Tuple[float, float, float, float], ...] = ()


def _sample_degrees(
    rng: np.random.Generator, n: int, avg: float, max_degree: int
) -> np.ndarray:
    """Net degrees >= 2 with the given mean: 2 + geometric tail."""
    p = 1.0 / max(avg - 1.0, 1.001)
    degrees = 2 + rng.geometric(p, size=n) - 1
    return np.clip(degrees, 2, max_degree)


def generate_netlist(
    spec: NetlistSpec, seed: int = 0
) -> Tuple[Netlist, np.ndarray]:
    """Build the netlist; returns ``(netlist, logical_xy)`` where
    ``logical_xy`` is the (n, 2) array of logical coordinates (the
    movebound generator clusters on them)."""
    rng = np.random.default_rng(seed)

    widths = rng.choice(spec.cell_widths, size=spec.num_cells)
    cell_area = float(np.sum(widths * spec.row_height))
    macro_area = spec.num_macros * spec.macro_size[0] * spec.macro_size[1]
    blocked_frac = sum(w * h for _x, _y, w, h in spec.blockage_fracs)
    die_area = (cell_area + macro_area) / spec.utilization / max(
        1.0 - blocked_frac, 0.1
    )
    side = math.sqrt(die_area)
    n_rows = max(int(round(side / spec.row_height)), 8)
    die = Rect(0.0, 0.0, side, n_rows * spec.row_height)

    netlist = Netlist(
        die,
        row_height=spec.row_height,
        site_width=spec.site_width,
        name=spec.name,
    )
    for x, y, w, h in spec.blockage_fracs:
        netlist.add_blockage(
            Rect(
                die.x_lo + x * die.width,
                die.y_lo + y * die.height,
                die.x_lo + (x + w) * die.width,
                die.y_lo + (y + h) * die.height,
            )
        )

    logical = rng.random((spec.num_cells, 2))
    xs = die.x_lo + logical[:, 0] * die.width
    ys = die.y_lo + logical[:, 1] * die.height
    netlist.add_cells(
        [f"c{i}" for i in range(spec.num_cells)],
        widths,
        spec.row_height,
        x=xs,
        y=ys,
    )
    for m in range(spec.num_macros):
        lx, ly = rng.random(2)
        netlist.add_cell(
            f"macro{m}",
            spec.macro_size[0],
            spec.macro_size[1],
            x=float(die.x_lo + lx * die.width),
            y=float(die.y_lo + ly * die.height),
        )
    netlist.finalize()

    # ------------------------------------------------------------------
    # nets: locality via a KD-tree on logical coordinates.
    # All randomness and neighbor lookups are batched — one KD-tree
    # query over every local seed and one RNG draw per decision array —
    # so a million-cell instance materializes in seconds instead of the
    # quadratic-ish per-net query loop this replaced.
    # ------------------------------------------------------------------
    num_nets = int(round(spec.num_cells * spec.nets_per_cell))
    degrees = _sample_degrees(rng, num_nets, spec.avg_degree, spec.max_degree)
    tree = cKDTree(logical)

    if num_nets and spec.num_cells >= 2:
        seeds = rng.integers(0, spec.num_cells, size=num_nets)
        is_global = rng.random(num_nets) < spec.global_net_fraction
        kmax = int(degrees.max(initial=2))
        qcount = min(kmax + 3, spec.num_cells)

        names: list = []
        member_lists: list = []

        # local nets: the (k+3)-nearest logical neighbors of each seed,
        # shuffled per net so members are a random subset of the
        # neighborhood rather than always the k nearest.  Nets are
        # extracted one degree class at a time, so member lists come
        # out of a single 2D ``tolist`` per class instead of a Python
        # slice per net.
        local_rows = np.nonzero(~is_global)[0]
        if len(local_rows):
            _d, nbr = tree.query(logical[seeds[local_rows]], k=qcount)
            nbr = np.atleast_2d(nbr)
            perm = rng.random(nbr.shape).argsort(axis=1)
            shuffled = np.take_along_axis(nbr, perm, axis=1)
            local_k = np.minimum(degrees[local_rows], qcount)
            for k in np.unique(local_k).tolist():
                rows = np.nonzero(local_k == k)[0]
                names.extend(
                    map("n{}".format, local_rows[rows].tolist())
                )
                member_lists.extend(shuffled[rows, :k].tolist())

        # global nets: sample with replacement, then dedupe per net —
        # for k << num_cells collisions are rare, and a net only
        # shrinks (never below 2) when they happen
        global_rows = np.nonzero(is_global)[0]
        if len(global_rows):
            draw = rng.integers(
                0, spec.num_cells, size=(len(global_rows), kmax)
            )
            for r, j in enumerate(global_rows.tolist()):
                members = np.unique(draw[r, : degrees[j]])
                if len(members) >= 2:
                    names.append(f"n{j}")
                    member_lists.append(members.tolist())
        netlist.add_nets_bulk(names, member_lists)

    # macros join a few local nets each
    for m in range(spec.num_macros):
        idx = spec.num_cells + m
        lx = (netlist.x[idx] - die.x_lo) / die.width
        ly = (netlist.y[idx] - die.y_lo) / die.height
        _d, near = tree.query((lx, ly), k=min(6, spec.num_cells))
        near = np.atleast_1d(near)
        netlist.add_net(
            f"mnet{m}",
            [Pin(idx)] + [Pin(int(c)) for c in near[:3]],
        )

    # boundary pads: fixed terminals wired to the logically closest cells
    for p in range(spec.num_pads):
        t = p / max(spec.num_pads, 1)
        edge = p % 4
        if edge == 0:
            px, py = die.x_lo + t * die.width, die.y_lo
        elif edge == 1:
            px, py = die.x_hi, die.y_lo + t * die.height
        elif edge == 2:
            px, py = die.x_hi - t * die.width, die.y_hi
        else:
            px, py = die.x_lo, die.y_hi - t * die.height
        lx = (px - die.x_lo) / die.width
        ly = (py - die.y_lo) / die.height
        _d, near = tree.query((lx, ly), k=min(4, spec.num_cells))
        near = np.atleast_1d(near)
        netlist.add_net(
            f"pad{p}",
            [Pin.terminal(px, py)] + [Pin(int(c)) for c in near[:2]],
        )
    return netlist, logical
