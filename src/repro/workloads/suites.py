"""Named instance suites mirroring the paper's tables.

The industrial chips (Dagmar ... Erik) and the ISPD 2006 set are not
available, so each name maps to a deterministic synthetic instance
whose *structural knobs* follow the paper's Tables II/III/VII rows:
relative size ordering, number of movebounds, share of movebounded
cells, maximum movebound density, and the (O)/(F)/nested remarks.

Sizes are scaled to reproduction scale (hundreds to thousands of
cells); set the ``REPRO_SCALE`` environment variable to grow them,
e.g. ``REPRO_SCALE=4`` for a heavier run.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.movebounds import EXCLUSIVE, INCLUSIVE, MoveBoundSet
from repro.netlist import Netlist
from repro.workloads.generator import NetlistSpec, generate_netlist
from repro.workloads.movebound_gen import MoveBoundSpec, attach_movebounds


def _scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


@dataclass
class Instance:
    """A ready-to-place instance."""

    name: str
    netlist: Netlist
    bounds: MoveBoundSet
    meta: Dict[str, object] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Table II suite: chips without movebounds (paper sizes in k-cells)
# ----------------------------------------------------------------------
#: name -> paper size in thousands of cells
TABLE2_SUITE: Dict[str, int] = {
    "Dagmar": 50,
    "Elisa": 67,
    "Lucius": 77,
    "Felix": 87,
    "Paula": 129,
    "Rabe": 175,
    "Julia": 190,
    "Max": 328,
    "Roger": 456,
    "Ashraf": 867,
    "Patrick": 1052,
    "Erhard": 2578,
    "Arijan": 3753,
    "Philipp": 3946,
    "Tomoku": 5296,
    "Trips": 5747,
    "Valentin": 5838,
    "Andre": 6794,
    "Ludwig": 7500,
    "Leyla": 8472,
    "Erik": 9316,
}


def _cells_for(paper_kcells: int) -> int:
    """Map a paper size (k-cells) to reproduction scale, preserving the
    relative ordering: 300-3600 cells at scale 1."""
    return int(round((300 + paper_kcells * 0.35) * _scale()))


def table2_instance(name: str, seed: int = 0) -> Instance:
    """A fresh (deterministic) instance of the Table II suite."""
    if name not in TABLE2_SUITE:
        raise KeyError(f"unknown Table II chip {name!r}")
    kcells = TABLE2_SUITE[name]
    spec = NetlistSpec(
        name=name,
        num_cells=_cells_for(kcells),
        num_pads=24 + (kcells % 17),
    )
    netlist, _logical = generate_netlist(
        spec, seed=seed + zlib.crc32(name.encode()) % 10000
    )
    return Instance(name, netlist, MoveBoundSet(netlist.die), {"kcells": kcells})


# ----------------------------------------------------------------------
# Table III suite: chips with movebounds
# ----------------------------------------------------------------------
@dataclass
class _MBRow:
    paper_kcells: int
    num_bounds: int
    cell_share: float  # % cells with movebounds, as a fraction
    max_density: float
    overlapping: bool = False
    flattened: bool = False
    nested: bool = False
    #: has a Table V (exclusive) variant; the paper runs exclusive mode
    #: only on Rabe/Ashraf/Erhard/Andre/Erik (overlaps modified away)
    exclusive_variant: bool = True


#: Table III rows at reproduction scale (num_bounds scaled down ~5x)
MOVEBOUND_SUITE: Dict[str, _MBRow] = {
    "Rabe": _MBRow(175, 2, 0.043, 0.67),
    "Ashraf": _MBRow(867, 12, 0.220, 0.80, flattened=True),
    "Erhard": _MBRow(2578, 9, 0.80, 0.74),
    "Tomoku": _MBRow(5296, 10, 0.12, 0.74, overlapping=True, flattened=True, nested=True, exclusive_variant=False),
    "Trips": _MBRow(5747, 12, 0.85, 0.81, overlapping=True, nested=True, exclusive_variant=False),
    "Andre": _MBRow(6794, 9, 0.08, 0.73, overlapping=True, flattened=True, nested=True),
    "Ludwig": _MBRow(7500, 7, 0.05, 0.70, overlapping=True, flattened=True),
    "Erik": _MBRow(9316, 8, 0.70, 0.85, flattened=True),
}


def movebound_instance(
    name: str,
    seed: int = 0,
    exclusive: bool = False,
) -> Instance:
    """A fresh instance of the Table III suite.

    ``exclusive=True`` builds the Table V variant: all movebounds
    exclusive.  Following the paper, nested/overlapping instances are
    infeasible in the exclusive case and raise ValueError (Table V only
    lists the 5 chips without (O))."""
    row = MOVEBOUND_SUITE[name]
    if exclusive and not row.exclusive_variant:
        raise ValueError(
            f"{name} has nested/overlapping movebounds — infeasible "
            "with exclusive semantics (paper §V, Table V omits it)"
        )
    spec = NetlistSpec(
        name=name,
        num_cells=_cells_for(row.paper_kcells),
        num_pads=24 + (row.paper_kcells % 17),
        utilization=0.50,
    )
    netlist, logical = generate_netlist(spec, seed=seed + zlib.crc32(name.encode()) % 10000)

    kind = EXCLUSIVE if exclusive else INCLUSIVE
    share = row.cell_share / row.num_bounds
    mb_specs: List[MoveBoundSpec] = []
    for i in range(row.num_bounds):
        density = row.max_density if i == 0 else row.max_density * 0.8
        shape = "L" if i % 3 == 2 else "rect"
        nested_in = None
        overlaps = None
        # exclusive mode drops nesting/overlap: "detected and modified
        # at the input" (paper §II) — matches Andre's Table V run
        if row.nested and i == 1 and not exclusive:
            nested_in = "mb0"
            shape = "rect"
        elif row.overlapping and i == 2 and not exclusive:
            overlaps = "mb0"
        mb_specs.append(
            MoveBoundSpec(
                name=f"mb{i}",
                cell_fraction=share,
                density=density,
                kind=kind,
                shape=shape,
                nested_in=nested_in,
                overlaps=overlaps,
                from_flattening=row.flattened,
            )
        )
    bounds = attach_movebounds(
        netlist, logical, mb_specs, seed=seed + 77
    )
    return Instance(
        name,
        netlist,
        bounds,
        {
            "kcells": row.paper_kcells,
            "num_bounds": row.num_bounds,
            "cell_share": row.cell_share,
            "max_density": row.max_density,
            "remarks": ("(O)" if row.overlapping else "")
            + ("(F)" if row.flattened else ""),
        },
    )


# ----------------------------------------------------------------------
# Table VII suite: ISPD-2006-like instances
# ----------------------------------------------------------------------
#: name -> (paper k-objects, target density, movable macros)
ISPD_SUITE: Dict[str, Tuple[int, float, int]] = {
    "ad5": (843, 0.50, 0),
    "nb1": (330, 0.80, 10),  # mixed-size: movable blocks
    "nb2": (441, 0.90, 0),
    "nb3": (494, 0.80, 0),
    "nb4": (646, 0.50, 0),
    "nb5": (1233, 0.50, 0),
    "nb6": (1255, 0.80, 0),
    "nb7": (2507, 0.80, 0),
}


def ispd_like_instance(name: str, seed: int = 0) -> Instance:
    """A fresh ISPD-2006-like instance (Table VII suite)."""
    kcells, target, macros = ISPD_SUITE[name]
    spec = NetlistSpec(
        name=name,
        num_cells=_cells_for(kcells),
        num_pads=40,
        num_macros=macros,
        utilization=min(0.85 * target, 0.55),
        blockage_fracs=((0.42, 0.42, 0.16, 0.16),),
    )
    netlist, _logical = generate_netlist(spec, seed=seed + zlib.crc32(name.encode()) % 10000)
    return Instance(
        name,
        netlist,
        MoveBoundSet(netlist.die),
        {"kcells": kcells, "target_density": target},
    )
