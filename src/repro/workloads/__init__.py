"""Synthetic workloads.

The paper evaluates on proprietary industrial chips and the ISPD 2006
contest set, neither of which ships with this reproduction.  This
package generates structurally comparable instances (see DESIGN.md,
"Substitutions"):

* :mod:`repro.workloads.generator` — Rent-style random netlists with
  locality (nets connect logically nearby cells), realistic net-degree
  distributions, boundary pads, optional macros and blockages;
* :mod:`repro.workloads.movebound_gen` — movebound synthesis with the
  paper's structural traits: inclusive/exclusive, non-convex (L-shape),
  overlapping (O), nested, and from-flattening (F: cells of a bound are
  a logically contiguous block);
* :mod:`repro.workloads.suites` — the named instances of Tables
  II/III/VII at reproduction scale, each a deterministic function of a
  seed.
"""

from repro.workloads.generator import NetlistSpec, generate_netlist
from repro.workloads.movebound_gen import MoveBoundSpec, attach_movebounds
from repro.workloads.suites import (
    Instance,
    ispd_like_instance,
    ISPD_SUITE,
    movebound_instance,
    MOVEBOUND_SUITE,
    table2_instance,
    TABLE2_SUITE,
)

__all__ = [
    "NetlistSpec",
    "generate_netlist",
    "MoveBoundSpec",
    "attach_movebounds",
    "Instance",
    "TABLE2_SUITE",
    "table2_instance",
    "MOVEBOUND_SUITE",
    "movebound_instance",
    "ISPD_SUITE",
    "ispd_like_instance",
]
