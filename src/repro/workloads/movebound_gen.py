"""Movebound synthesis with the paper's structural traits.

Table III characterizes the industrial instances by: number of
movebounds, share of cells with movebounds, maximum movebound density,
and remarks — (O) overlapping, (F) movebounds obtained from flattening
hierarchy, plus nesting.  The generator reproduces each trait:

* **(F)** bounds take a logically contiguous cluster of cells (nearest
  neighbors of a random center in logical space) — like a flattened
  hierarchical unit;
* **(O)** bounds are placed to partially overlap a partner bound;
* **nesting** places a bound's area strictly inside its parent and
  sizes the parent to also accommodate the child's cells;
* non-convex areas are L-shaped (two rectangles);
* the assigned-cell area over bound capacity hits the requested
  density.

After placement the global Theorem-2 feasibility check runs; areas are
grown and repositioned until the instance is feasible, so every suite
instance is solvable by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.feasibility import check_feasibility
from repro.geometry import Rect, RectSet
from repro.movebounds import (
    DEFAULT_BOUND,
    EXCLUSIVE,
    INCLUSIVE,
    MoveBound,
    MoveBoundSet,
    decompose_regions,
)
from repro.netlist import Netlist


def _row_feasible(
    netlist: Netlist, bounds: MoveBoundSet, margin: float = 0.95
) -> bool:
    """Theorem-2 feasibility against *row* capacities.

    Geometric area overestimates what rows can hold (partial rows and
    site fragments are unusable), and legalization works at row
    granularity — so generated instances must pass this stricter check,
    not just the geometric one.
    """
    from repro.flows import Dinic
    from repro.legalize.rows import (
        build_segments,
        max_std_cell_width,
        usable_row_capacity,
    )

    decomposition = decompose_regions(
        netlist.die, bounds, netlist.blockages
    )
    sizes: Dict[str, float] = {}
    for cell in netlist.cells:
        if cell.fixed:
            continue
        name = cell.movebound or DEFAULT_BOUND
        sizes[name] = sizes.get(name, 0.0) + cell.size
    total = sum(sizes.values())
    dinic = Dinic()
    for name, size in sizes.items():
        dinic.add_edge("s", ("M", name), size)
    w_max = max_std_cell_width(netlist)
    for region in decomposition:
        segments = build_segments(netlist, region.free_area)
        cap = margin * usable_row_capacity(segments, w_max)
        if cap <= 0:
            continue
        dinic.add_edge(("r", region.index), "t", cap)
        for name in sizes:
            if region.admits(name):
                dinic.add_edge(
                    ("M", name), ("r", region.index), float("inf")
                )
    routed = dinic.max_flow("s", "t")
    return routed >= total - 1e-6 * max(total, 1.0)


@dataclass
class MoveBoundSpec:
    """One movebound to synthesize."""

    name: str
    cell_fraction: float
    density: float = 0.65  # assigned cell area / bound capacity
    kind: str = INCLUSIVE
    shape: str = "rect"  # "rect" or "L"
    nested_in: Optional[str] = None
    overlaps: Optional[str] = None
    from_flattening: bool = True


def _snap_rects(
    rects: List[Rect], die: Rect, row_height: float, site_width: float
) -> List[Rect]:
    """Snap rectangles outward to the row/site grid (real movebounds
    are row-aligned; unaligned areas lose capacity to partial rows)."""
    out = []
    for r in rects:
        x_lo = die.x_lo + math.floor((r.x_lo - die.x_lo) / site_width) * site_width
        x_hi = die.x_lo + math.ceil((r.x_hi - die.x_lo) / site_width) * site_width
        y_lo = die.y_lo + math.floor((r.y_lo - die.y_lo) / row_height) * row_height
        y_hi = die.y_lo + math.ceil((r.y_hi - die.y_lo) / row_height) * row_height
        out.append(
            Rect(
                max(x_lo, die.x_lo),
                max(y_lo, die.y_lo),
                min(x_hi, die.x_hi),
                min(y_hi, die.y_hi),
            )
        )
    return out


def _make_area(
    rng: np.random.Generator,
    die: Rect,
    center: Tuple[float, float],
    area_needed: float,
    shape: str,
    min_dim: float = 4.0,
) -> List[Rect]:
    """Rectangles of the requested total area near `center`."""
    area_needed = max(area_needed, min_dim * min_dim)
    aspect = float(rng.uniform(0.6, 1.6))
    if shape == "L":
        # an L = tall rect + wide rect, each ~60% of the area
        a1 = area_needed * 0.6
        a2 = area_needed * 0.55
        w1 = math.sqrt(a1 / (aspect * 2.0))
        h1 = a1 / w1
        w2 = a2 / (h1 * 0.45)
        h2 = h1 * 0.45
        rects = [
            Rect(0.0, 0.0, w1, h1),
            Rect(w1, 0.0, min(w1 + w2, w1 + die.width), h2),
        ]
    else:
        w = math.sqrt(area_needed * aspect)
        h = area_needed / w
        rects = [Rect(0.0, 0.0, w, h)]
    # translate so the bbox centers on `center`, clamped into the die
    xs = [r.x_lo for r in rects] + [r.x_hi for r in rects]
    ys = [r.y_lo for r in rects] + [r.y_hi for r in rects]
    bw, bh = max(xs) - min(xs), max(ys) - min(ys)
    if bw > die.width * 0.95 or bh > die.height * 0.95:
        scale = min(die.width * 0.95 / bw, die.height * 0.95 / bh)
        rects = [
            Rect(r.x_lo * scale, r.y_lo * scale, r.x_hi * scale, r.y_hi * scale)
            for r in rects
        ]
        bw *= scale
        bh *= scale
    dx = min(max(center[0] - bw / 2, die.x_lo), die.x_hi - bw)
    dy = min(max(center[1] - bh / 2, die.y_lo), die.y_hi - bh)
    return [r.translated(dx, dy) for r in rects]


def _shelf_layout(
    netlist: Netlist,
    order: Sequence[MoveBoundSpec],
    demand: Dict[str, float],
    density_target: float,
    grow: float,
    rng: np.random.Generator,
) -> Optional[MoveBoundSet]:
    """Deterministic packed layout for high-coverage movebound sets.

    Rejection sampling cannot place disjoint areas covering most of the
    die (Erhard/Trips/Erik-style instances where >70 % of cells carry
    movebounds), so the top-level bounds are laid out by a slicing
    floorplan (recursive splits proportional to demand); nested bounds
    go flush into their parents' corners and overlapping bounds extend
    over their partners' edges afterwards.
    """
    die = netlist.die
    top = [s for s in order if not s.nested_in and not s.overlaps]
    needed = {
        s.name: demand[s.name] / (s.density * density_target) * grow
        for s in top
    }
    if sum(needed.values()) > 0.82 * die.area:
        return None

    # slicing floorplan: recursively split the die proportionally to
    # the demands, one leaf rectangle per top-level bound
    areas: Dict[str, List[Rect]] = {}

    def split(rect: Rect, group: List[MoveBoundSpec]) -> bool:
        if len(group) == 1:
            s = group[0]
            want = needed[s.name]
            if want > 0.92 * rect.area:
                return False
            scale = math.sqrt(want / rect.area)
            w, h = rect.width * scale, rect.height * scale
            x0 = rect.x_lo + (rect.width - w) / 2
            y0 = rect.y_lo + (rect.height - h) / 2
            areas[s.name] = _snap_rects(
                [Rect(x0, y0, x0 + w, y0 + h)],
                die,
                netlist.row_height,
                netlist.site_width,
            )
            return True
        # balanced bipartition of demands (greedy, largest first)
        left: List[MoveBoundSpec] = []
        right: List[MoveBoundSpec] = []
        d_left = d_right = 0.0
        for s in sorted(group, key=lambda s: -needed[s.name]):
            if d_left <= d_right:
                left.append(s)
                d_left += needed[s.name]
            else:
                right.append(s)
                d_right += needed[s.name]
        frac = d_left / max(d_left + d_right, 1e-12)
        frac = min(max(frac, 0.15), 0.85)
        if rect.width >= rect.height:
            cut = rect.x_lo + rect.width * frac
            r1 = Rect(rect.x_lo, rect.y_lo, cut, rect.y_hi)
            r2 = Rect(cut, rect.y_lo, rect.x_hi, rect.y_hi)
        else:
            cut = rect.y_lo + rect.height * frac
            r1 = Rect(rect.x_lo, rect.y_lo, rect.x_hi, cut)
            r2 = Rect(rect.x_lo, cut, rect.x_hi, rect.y_hi)
        return split(r1, left) and split(r2, right)

    if not split(die, list(top)):
        return None
    for s in order:
        if s.nested_in:
            # flush in the parent's corner: the remainder is a clean
            # L-shape with wide arms instead of a thin frame of slivers
            parent = max(areas[s.nested_in], key=lambda r: r.area)
            need = demand[s.name] / (s.density * density_target) * grow
            shrink = math.sqrt(min(need / parent.area, 0.60))
            w, h = parent.width * shrink, parent.height * shrink
            child = Rect(
                parent.x_lo, parent.y_lo, parent.x_lo + w, parent.y_lo + h
            )
            snapped = _snap_rects(
                [child], die, netlist.row_height, netlist.site_width
            )[0]
            clipped = snapped.intersection(parent)
            areas[s.name] = [clipped if clipped is not None else child]
        elif s.overlaps:
            partner = areas[s.overlaps][0]
            need = demand[s.name] / (s.density * density_target) * grow
            w = math.sqrt(need * 1.2)
            h = need / w
            # overlap a strip of the partner but extend *outside* it,
            # so both difference regions remain solid usable blocks
            depth = max(min(0.3 * partner.width, 0.4 * w), 4.0)
            x0 = partner.x_hi - depth
            y0 = partner.center[1] - h / 2
            x0 = min(max(x0, die.x_lo), die.x_hi - w)
            y0 = min(max(y0, die.y_lo), die.y_hi - h)
            areas[s.name] = _snap_rects(
                [Rect(x0, y0, x0 + w, y0 + h)],
                die,
                netlist.row_height,
                netlist.site_width,
            )
    bounds = MoveBoundSet(die)
    for s in order:
        bounds.add_rects(s.name, areas[s.name], s.kind)
    try:
        bounds.normalize()
    except ValueError:
        return None
    return bounds


def attach_movebounds(
    netlist: Netlist,
    logical: np.ndarray,
    specs: Sequence[MoveBoundSpec],
    seed: int = 0,
    density_target: float = 0.97,
    max_attempts: int = 12,
) -> MoveBoundSet:
    """Assign cells to movebounds and synthesize feasible areas.

    Mutates ``cell.movebound`` on the netlist and returns the
    normalized :class:`MoveBoundSet`.  Raises when no feasible layout
    is found within ``max_attempts`` grow-and-retry rounds.
    """
    rng = np.random.default_rng(seed)
    die = netlist.die
    n = len(logical)
    std_cells = [
        c.index for c in netlist.cells if not c.fixed and c.index < n
    ]
    tree = cKDTree(logical[std_cells])

    # ------------------------------------------------------------------
    # pick member cells per spec
    # ------------------------------------------------------------------
    assigned = np.zeros(len(netlist.cells), dtype=bool)
    members: Dict[str, List[int]] = {}
    for spec in specs:
        count = max(2, int(round(spec.cell_fraction * len(std_cells))))
        chosen: List[int] = []
        if spec.from_flattening:
            center = rng.random(2)
            _d, order = tree.query(center, k=len(std_cells))
            order = np.atleast_1d(order)
            for pos in order:
                ci = std_cells[int(pos)]
                if not assigned[ci]:
                    chosen.append(ci)
                    if len(chosen) >= count:
                        break
        else:
            pool = [ci for ci in std_cells if not assigned[ci]]
            take = min(count, len(pool))
            chosen = [int(c) for c in rng.choice(pool, take, replace=False)]
        for ci in chosen:
            assigned[ci] = True
            netlist.cells[ci].movebound = spec.name
        members[spec.name] = chosen

    cell_area = {
        spec.name: sum(netlist.cells[i].size for i in members[spec.name])
        for spec in specs
    }
    # nested parents must also hold their children's cells
    demand = dict(cell_area)
    for spec in specs:
        if spec.nested_in:
            demand[spec.nested_in] = (
                demand.get(spec.nested_in, 0.0) + cell_area[spec.name]
            )

    spec_by_name = {s.name: s for s in specs}
    # place parents before children, overlap targets before overlappers
    order: List[MoveBoundSpec] = []
    placed_names: set = set()
    remaining = list(specs)
    while remaining:
        progressed = False
        for spec in list(remaining):
            deps = [d for d in (spec.nested_in, spec.overlaps) if d]
            if all(d in placed_names for d in deps):
                order.append(spec)
                placed_names.add(spec.name)
                remaining.remove(spec)
                progressed = True
        if not progressed:
            raise ValueError("cyclic nested_in/overlaps dependencies")

    # ------------------------------------------------------------------
    # place areas, growing on infeasibility
    # ------------------------------------------------------------------
    total_needed = sum(
        demand[s.name] / (s.density * density_target)
        for s in order
        if not s.nested_in
    )
    use_shelf = total_needed > 0.33 * die.area
    grow = 1.0
    for attempt in range(max_attempts):
        if use_shelf or attempt >= max_attempts // 2:
            # the scatter path may have shrunk `grow` fighting for
            # placement room; the packed layout needs full-size areas
            grow = max(grow, 1.0)
            bounds = _shelf_layout(
                netlist, order, demand, density_target, grow, rng
            )
            if bounds is not None:
                report = check_feasibility(
                    netlist, bounds, density_target=density_target
                )
                if report.feasible and _row_feasible(netlist, bounds):
                    return bounds
            grow *= 1.25
            continue
        bounds = MoveBoundSet(die)
        areas: Dict[str, List[Rect]] = {}
        exclusive_union = RectSet()
        ok = True
        for spec in order:
            area_needed = (
                demand[spec.name] / (spec.density * density_target) * grow
            )
            # preferred center: where the member cells logically live
            lx = np.mean([logical[i][0] for i in members[spec.name]])
            ly = np.mean([logical[i][1] for i in members[spec.name]])
            center = (
                die.x_lo + lx * die.width,
                die.y_lo + ly * die.height,
            )
            rects: Optional[List[Rect]] = None
            if spec.nested_in:
                parent_rects = areas[spec.nested_in]
                parent = max(parent_rects, key=lambda r: r.area)
                shrink = math.sqrt(
                    min(area_needed / parent.area, 0.70)
                )
                w = parent.width * shrink
                h = parent.height * shrink
                rects = _snap_rects(
                    [
                        Rect(
                            parent.x_lo,
                            parent.y_lo,
                            parent.x_lo + w,
                            parent.y_lo + h,
                        )
                    ],
                    die, netlist.row_height, netlist.site_width,
                )
                rects = [r.intersection(parent) or r for r in rects]
            else:
                for _try in range(60):
                    if spec.overlaps:
                        partner = areas[spec.overlaps]
                        pb = partner[0]
                        cx = pb.x_hi - 0.1 * pb.width + rng.uniform(
                            0, 0.3 * pb.width
                        )
                        cy = pb.center[1] + rng.uniform(-0.3, 0.3) * pb.height
                        cand = _snap_rects(
                            _make_area(
                                rng, die, (cx, cy), area_needed,
                                spec.shape, min_dim=4 * netlist.row_height,
                            ),
                            die, netlist.row_height, netlist.site_width,
                        )
                    else:
                        jitter = rng.uniform(-0.12, 0.12, size=2)
                        cand = _snap_rects(
                            _make_area(
                                rng,
                                die,
                                (
                                    center[0] + jitter[0] * die.width,
                                    center[1] + jitter[1] * die.height,
                                ),
                                area_needed,
                                spec.shape,
                                min_dim=4 * netlist.row_height,
                            ),
                            die, netlist.row_height, netlist.site_width,
                        )
                    cand_set = RectSet(cand)
                    # bounds only overlap when the spec asks for it —
                    # accidental stacking would silently tighten
                    # capacities far beyond the requested densities
                    conflict = False
                    for other_name, other_rects in areas.items():
                        if spec.overlaps == other_name:
                            continue
                        if not cand_set.intersect(
                            RectSet(other_rects)
                        ).is_empty:
                            conflict = True
                            break
                    if not conflict and spec.overlaps:
                        # the requested overlap must actually exist
                        if cand_set.intersect(
                            RectSet(areas[spec.overlaps])
                        ).is_empty:
                            conflict = True
                    if not conflict:
                        rects = cand
                        break
                if rects is None:
                    ok = False
                    break
            areas[spec.name] = rects
            if spec.kind == EXCLUSIVE:
                exclusive_union = exclusive_union.union(RectSet(rects))
        if not ok:
            grow *= 0.92  # shrink to make room and retry placement
            continue

        for spec in order:
            bounds.add_rects(spec.name, areas[spec.name], spec.kind)
        bounds.normalize()
        report = check_feasibility(
            netlist, bounds, density_target=density_target
        )
        if report.feasible and _row_feasible(netlist, bounds):
            return bounds
        grow *= 1.15  # more room per bound and retry

    raise ValueError(
        "could not synthesize a feasible movebound layout; "
        "reduce densities or cell fractions"
    )
