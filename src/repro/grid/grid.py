"""Grid, Window and WindowRegion.

A :class:`Grid` is an nx x ny regular subdivision of the die.  After
:meth:`Grid.build_regions` every window holds its clipped region set
R_w with free areas (blockages subtracted) and capacities.  The grid
also provides the 2x3 / 3x2 *coarse windows* used by FBP realization
(paper §IV.B) and cell->window assignment.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import Rect, RectSet, active_cache
from repro.movebounds import Region, RegionDecomposition
from repro.netlist import Netlist

#: Compass directions in paper order.
DIRECTIONS = ("N", "E", "S", "W")


@dataclass
class WindowRegion:
    """A maximal region clipped to one window (an element of R_w)."""

    window_index: int
    region: Region
    area: RectSet
    free_area: RectSet

    def capacity(self, density_target: float = 1.0) -> float:
        return self.free_area.area * density_target

    def centroid(self) -> Tuple[float, float]:
        """Center of gravity of the free area (paper: region nodes are
        embedded at the center-of-gravity of the free region area)."""
        if not self.free_area.is_empty and self.free_area.area > 0:
            return self.free_area.centroid()
        return self.area.centroid()

    def admits(self, bound_name: str) -> bool:
        return self.region.admits(bound_name)

    @property
    def signature(self):
        return self.region.signature


@dataclass
class Window:
    """One grid window with its clipped regions R_w."""

    index: int
    ix: int
    iy: int
    rect: Rect
    regions: List[WindowRegion] = field(default_factory=list)

    def capacity(self, density_target: float = 1.0) -> float:
        return sum(r.capacity(density_target) for r in self.regions)

    def boundary_center(self, direction: str) -> Tuple[float, float]:
        """Center of the N/E/S/W boundary — transit node embedding."""
        cx, cy = self.rect.center
        if direction == "N":
            return (cx, self.rect.y_hi)
        if direction == "S":
            return (cx, self.rect.y_lo)
        if direction == "E":
            return (self.rect.x_hi, cy)
        if direction == "W":
            return (self.rect.x_lo, cy)
        raise ValueError(f"unknown direction {direction!r}")


class Grid:
    """An nx x ny regular grid over the die."""

    def __init__(self, die: Rect, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise ValueError("grid must have at least one window per axis")
        self.die = die
        self.nx = nx
        self.ny = ny
        self.xs = [
            die.x_lo + die.width * i / nx for i in range(nx + 1)
        ]
        self.ys = [
            die.y_lo + die.height * j / ny for j in range(ny + 1)
        ]
        # guard against float drift at the die boundary
        self.xs[-1] = die.x_hi
        self.ys[-1] = die.y_hi
        self._xs_np = np.asarray(self.xs)
        self._ys_np = np.asarray(self.ys)
        self.windows: List[Window] = []
        for iy in range(ny):
            for ix in range(nx):
                rect = Rect(
                    self.xs[ix], self.ys[iy], self.xs[ix + 1], self.ys[iy + 1]
                )
                self.windows.append(Window(len(self.windows), ix, iy, rect))

    # ------------------------------------------------------------------
    # index helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self) -> Iterator[Window]:
        return iter(self.windows)

    def window(self, ix: int, iy: int) -> Window:
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise IndexError(f"window ({ix}, {iy}) out of grid")
        return self.windows[iy * self.nx + ix]

    def window_at(self, x: float, y: float) -> Window:
        """The window containing point (x, y), clamped to the die."""
        ix = min(max(bisect_right(self.xs, x) - 1, 0), self.nx - 1)
        iy = min(max(bisect_right(self.ys, y) - 1, 0), self.ny - 1)
        return self.window(ix, iy)

    def neighbor(self, window: Window, direction: str) -> Optional[Window]:
        dx, dy = {"N": (0, 1), "S": (0, -1), "E": (1, 0), "W": (-1, 0)}[
            direction
        ]
        ix, iy = window.ix + dx, window.iy + dy
        if 0 <= ix < self.nx and 0 <= iy < self.ny:
            return self.window(ix, iy)
        return None

    def neighbors(self, window: Window) -> List[Tuple[str, Window]]:
        out = []
        for d in DIRECTIONS:
            n = self.neighbor(window, d)
            if n is not None:
                out.append((d, n))
        return out

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------
    def build_regions(self, decomposition: RegionDecomposition) -> None:
        """Clip every maximal region to every window it intersects,
        populating each window's R_w.

        Runs over region rectangles and locates overlapped window index
        ranges by bisection, so the cost is proportional to the number
        of produced pieces rather than |R| x |W|.

        With an active :class:`~repro.geometry.cache.GeometryCache`,
        the built R_w lists are cached per grid dimensions, and the
        clipping of a ``2n x 2n`` grid is derived from the cached
        ``n x n`` pieces instead of re-scanning the decomposition:
        window boundaries of the coarse level are bit-exact members of
        the fine lattice (``(2a)/(2n)`` rounds identically to
        ``a/n``), so ``(r ∩ W_parent) ∩ W_child = r ∩ W_child`` holds
        exactly and the delta path produces identical rectangles.
        """
        for w in self.windows:
            w.regions = []
        cache = active_cache()
        if cache is not None:
            built = cache.get(("regions", self.nx, self.ny))
            if built is not None:
                for w, regions in zip(self.windows, built):
                    w.regions = list(regions)
                return
        pieces, free_pieces = self._region_pieces(decomposition, cache)
        for (widx, ridx), rects in pieces.items():
            region = decomposition.regions[ridx]
            free = RectSet(free_pieces.get((widx, ridx), []))
            self.windows[widx].regions.append(
                WindowRegion(widx, region, RectSet(rects), free)
            )
        for w in self.windows:
            w.regions.sort(key=lambda wr: wr.region.index)
        if cache is not None:
            cache.put(
                ("regions", self.nx, self.ny),
                [tuple(w.regions) for w in self.windows],
            )

    def _region_pieces(
        self,
        decomposition: RegionDecomposition,
        cache=None,
    ) -> Tuple[
        Dict[Tuple[int, int], List[Rect]], Dict[Tuple[int, int], List[Rect]]
    ]:
        """(window, region) -> clipped rect lists for area and free
        area, via the coarse-level refinement delta when available."""
        if (
            cache is not None
            and self.nx % 2 == 0
            and self.ny % 2 == 0
            and self.nx > 1
            and self.ny > 1
        ):
            parent = cache.get(("pieces", self.nx // 2, self.ny // 2))
            if parent is not None:
                result = self._refine_pieces(parent)
                cache.put(("pieces", self.nx, self.ny), result)
                return result
        result = self._scan_pieces(decomposition)
        if cache is not None:
            cache.put(("pieces", self.nx, self.ny), result)
        return result

    def _scan_pieces(self, decomposition: RegionDecomposition):
        """Clip the decomposition to this grid by direct scan."""
        pieces: Dict[Tuple[int, int], List[Rect]] = {}
        free_pieces: Dict[Tuple[int, int], List[Rect]] = {}
        for region in decomposition:
            for source, store in (
                (region.area, pieces),
                (region.free_area, free_pieces),
            ):
                for rect in source:
                    ix_lo = min(
                        max(bisect_right(self.xs, rect.x_lo) - 1, 0),
                        self.nx - 1,
                    )
                    iy_lo = min(
                        max(bisect_right(self.ys, rect.y_lo) - 1, 0),
                        self.ny - 1,
                    )
                    for ix in range(ix_lo, self.nx):
                        if self.xs[ix] >= rect.x_hi:
                            break
                        for iy in range(iy_lo, self.ny):
                            if self.ys[iy] >= rect.y_hi:
                                break
                            window = self.window(ix, iy)
                            clipped = rect.intersection(window.rect)
                            if clipped is not None and not clipped.is_empty:
                                store.setdefault(
                                    (window.index, region.index), []
                                ).append(clipped)
        return pieces, free_pieces

    def _refine_pieces(self, parent):
        """Derive this grid's clipped pieces from the ``nx/2 x ny/2``
        level's: each parent piece is split over the parent window's
        four children.  Exactly equivalent to :meth:`_scan_pieces`
        because every child window lies inside its parent window."""
        pnx = self.nx // 2
        parent_pieces, parent_free = parent
        pieces: Dict[Tuple[int, int], List[Rect]] = {}
        free_pieces: Dict[Tuple[int, int], List[Rect]] = {}
        for source, store in (
            (parent_pieces, pieces),
            (parent_free, free_pieces),
        ):
            for (pwidx, ridx), rects in source.items():
                pix = pwidx % pnx
                piy = pwidx // pnx
                children = [
                    self.window(ix, iy)
                    for iy in (2 * piy, 2 * piy + 1)
                    for ix in (2 * pix, 2 * pix + 1)
                ]
                for rect in rects:
                    for child in children:
                        clipped = rect.intersection(child.rect)
                        if clipped is not None and not clipped.is_empty:
                            store.setdefault(
                                (child.index, ridx), []
                            ).append(clipped)
        return pieces, free_pieces

    # ------------------------------------------------------------------
    # cells
    # ------------------------------------------------------------------
    def assign_cells(self, netlist: Netlist) -> np.ndarray:
        """Window index of every cell's current center position."""
        # vectorized window_at: searchsorted(side="right") == bisect_right
        ix = np.clip(
            np.searchsorted(self._xs_np, netlist.x, side="right") - 1,
            0,
            self.nx - 1,
        )
        iy = np.clip(
            np.searchsorted(self._ys_np, netlist.y, side="right") - 1,
            0,
            self.ny - 1,
        )
        return iy * self.nx + ix

    # ------------------------------------------------------------------
    # coarse realization windows (paper §IV.B)
    # ------------------------------------------------------------------
    def coarse_block(self, v: Window, w: Window) -> List[Window]:
        """The coarse window W with {v, w} ⊆ W ⊆ 𝒲: v, the target w and
        v's neighbors — a 2x3 or 3x2 block clamped at the grid border.

        For a horizontal external edge (w east/west of v) the block is
        3 windows wide and 2 tall; vertical edges transpose this.
        """
        if abs(v.ix - w.ix) + abs(v.iy - w.iy) != 1:
            raise ValueError("coarse_block expects adjacent windows")
        if v.iy == w.iy:  # horizontal: 3 wide x 2 tall
            ix_lo = min(v.ix, w.ix)
            ix_span = self._clamp_span(ix_lo - (1 if v.ix > w.ix else 0), 3, self.nx)
            iy_span = self._clamp_span(v.iy, 2, self.ny)
        else:  # vertical: 2 wide x 3 tall
            iy_lo = min(v.iy, w.iy)
            iy_span = self._clamp_span(iy_lo - (1 if v.iy > w.iy else 0), 3, self.ny)
            ix_span = self._clamp_span(v.ix, 2, self.nx)
        block = []
        for iy in iy_span:
            for ix in ix_span:
                block.append(self.window(ix, iy))
        return block

    @staticmethod
    def _clamp_span(lo: int, length: int, limit: int) -> range:
        lo = max(0, min(lo, limit - length)) if limit >= length else 0
        hi = min(lo + length, limit)
        return range(lo, hi)

    def block_rect(self, block: Sequence[Window]) -> Rect:
        r = block[0].rect
        for w in block[1:]:
            r = r.bbox_union(w.rect)
        return r

    def __repr__(self) -> str:
        return f"Grid({self.nx}x{self.ny} over {self.die})"
