"""Regular placement grids: windows and per-window region sets.

Partitioning-based placement subdivides the chip area by regular grids
into *windows* (paper §III).  With movebounds, each window w carries a
set of regions R_w — the global maximal regions clipped to w — whose
capacities encode condition (1) locally.
"""

from repro.grid.grid import Grid, Window, WindowRegion

__all__ = ["Grid", "Window", "WindowRegion"]
