"""repro — reproduction of "Flow-based partitioning and position
constraints in VLSI placement" (M. Struzyna, DATE 2011).

The package implements the complete system the paper describes:

* movebounds (inclusive/exclusive, non-convex, overlapping) and their
  region decomposition (:mod:`repro.movebounds`),
* polynomial feasibility checks, Theorems 1-2 (:mod:`repro.feasibility`),
* the flow-based partitioning core — global MinCostFlow model,
  realization, deterministic parallel schedule (:mod:`repro.fbp`),
* quadratic placement with clique/star/B2B net models (:mod:`repro.qp`),
* movebound-aware legalization (:mod:`repro.legalize`),
* the **BonnPlaceFBP** placer plus RQL-style, Kraftwerk2-style and
  recursive-partitioning baselines (:mod:`repro.place`),
* synthetic workloads standing in for the paper's industrial chips and
  the ISPD 2006 set (:mod:`repro.workloads`), and
* metrics/scoring used by the benchmark harness (:mod:`repro.metrics`).

Quickstart::

    from repro.workloads import movebound_instance
    from repro.place import BonnPlaceFBP

    inst = movebound_instance("Erik", seed=1)
    result = BonnPlaceFBP().place(inst.netlist, inst.bounds)
    print(result.hpwl, result.legality.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
