"""ResilientSolver: budgets + a fallback chain over the MCF backends.

The paper's pipeline solves one global MinCostFlow per level; a solver
stall there used to hang or crash the whole placement.  The wrapper
below drives a *fallback chain*

    network simplex  ->  successive shortest paths  ->  transportation
                                                        heuristic

where each attempt runs under the configured
:class:`~repro.resilience.budget.SolverBudget` and a failure
(:class:`SolverBudgetExceeded`, :class:`SolverNumericsError`) falls
through to the next backend.  The terminal "heur" backend ignores
optimality and just routes a feasible flow with Dinic max-flow over the
cost network (a transportation-style feasibility heuristic) — it is
strongly polynomial, so the chain always terminates with either a flow
or a classified error.

Every attempt is recorded on the returned
:class:`~repro.flows.mincostflow.FlowResult` (``result.attempts``) and
in the obs counters (``resilience.*``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.obs import incr
from repro.resilience.budget import SolverBudget, get_default_budget
from repro.resilience.errors import (
    ReproError,
    SolverBudgetExceeded,
    SolverNumericsError,
)

__all__ = ["ResilientSolver", "SolveAttempt", "DEFAULT_CHAIN"]

#: Fallback order used when the caller does not pin a backend.  The
#: auto heuristic of MinCostFlowProblem (ssp below a few hundred arcs,
#: ns above) stays the primary; the chain only changes what happens
#: *after* a failure.
DEFAULT_CHAIN = ("ns", "ssp", "heur")


@dataclass
class SolveAttempt:
    """Record of one backend attempt inside the chain."""

    method: str
    ok: bool
    error: str = ""
    error_type: str = ""

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "ok": self.ok,
            "error": self.error,
            "error_type": self.error_type,
        }


@dataclass
class ResilientSolver:
    """Budgeted, falling-back driver for a MinCostFlowProblem.

    ``chain`` is the backend order; ``None`` derives it from the
    instance size (primary = the ``auto`` pick, then the remaining
    exact backend, then the feasibility heuristic).  A caller-pinned
    single method still gets the heuristic as a safety net *only when a
    budget/numerics failure occurs* — in normal operation the pinned
    backend's result is returned untouched.
    """

    chain: Optional[Sequence[str]] = None
    budget: Optional[SolverBudget] = None
    attempts: List[SolveAttempt] = field(default_factory=list)

    @classmethod
    def for_method(
        cls,
        method: str = "auto",
        budget: Optional[SolverBudget] = None,
    ) -> "ResilientSolver":
        """Chain for a user-requested method.

        ``auto``/``resilient`` -> size-adaptive full chain; a concrete
        method -> that method first, heuristic fallback behind it.
        ``lp`` keeps ``ssp`` as its exact fallback before the
        heuristic (the LP run shares no code with ssp, so a numerics
        failure there says nothing about ssp).
        """
        if method in ("auto", "resilient"):
            return cls(chain=None, budget=budget)
        if method == "lp":
            return cls(chain=("lp", "ssp", "heur"), budget=budget)
        if method == "heur":
            return cls(chain=("heur",), budget=budget)
        return cls(chain=(method, "heur"), budget=budget)

    # ------------------------------------------------------------------
    def _chain_for(self, problem) -> Sequence[str]:
        if self.chain is not None:
            return self.chain
        if len(problem.arcs) <= 500:
            return ("ssp", "ns", "heur")
        return DEFAULT_CHAIN

    def solve(self, problem, warm_slot=None):
        """Run the chain; return the first successful FlowResult.

        Raises the *last* failure when every backend fails, annotated
        with the full attempt history.  ``warm_slot`` is forwarded to
        the backend (only the network simplex uses it).
        """
        budget = self.budget if self.budget is not None else get_default_budget()
        chain = self._chain_for(problem)
        self.attempts = []
        last_exc: Optional[ReproError] = None
        for pos, method in enumerate(chain):
            incr("resilience.solve_attempts")
            try:
                result = problem.solve(
                    method, budget=budget, warm_slot=warm_slot
                )
            except (SolverBudgetExceeded, SolverNumericsError) as exc:
                self.attempts.append(
                    SolveAttempt(
                        method,
                        False,
                        error=str(exc),
                        error_type=type(exc).__name__,
                    )
                )
                incr(f"resilience.attempt.{method}.failed")
                if pos + 1 < len(chain):
                    incr("resilience.fallbacks")
                last_exc = exc
                continue
            self.attempts.append(SolveAttempt(method, True))
            incr(f"resilience.attempt.{method}.ok")
            if len(self.attempts) > 1:
                incr("resilience.recovered")
            result.attempts = list(self.attempts)
            return result
        assert last_exc is not None
        last_exc.context["attempts"] = [a.to_dict() for a in self.attempts]
        last_exc.context["chain"] = list(chain)
        raise last_exc
