"""Infeasibility diagnosis and graceful degradation.

When the Theorem-1/2 MaxFlow check fails, the min cut of the
feasibility network names a movebound subset M' violating condition
(1).  :func:`diagnose_infeasibility` turns that witness into a full
:class:`InfeasibilityDiagnosis` — the subset, its cell-area demand, the
capacity of the union of its areas, and the deficit — i.e. exactly the
two sides of condition (1) that disagree.

:func:`relax_to_feasible` implements the degradation path behind
``--relax-infeasible``: the smallest uniform capacity relaxation factor
(applied to the density target, equivalent to scaling every region
capacity) that makes the instance feasible, found by doubling plus
bisection over the monotone feasibility predicate.  The placer then
runs with relaxed capacities instead of aborting, and reports the
overfill it accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from typing import TYPE_CHECKING

from repro.geometry import RectSet
from repro.movebounds import MoveBoundSet, RegionDecomposition
from repro.netlist import Netlist
from repro.obs import incr
from repro.resilience.errors import InfeasibleInputError

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle with flows
    from repro.feasibility.check import FeasibilityReport

__all__ = [
    "InfeasibilityDiagnosis",
    "diagnose_infeasibility",
    "relax_to_feasible",
    "raise_infeasible",
]


@dataclass(frozen=True)
class InfeasibilityDiagnosis:
    """Condition (1) evaluated on the min-cut witness subset M'."""

    witness: FrozenSet[str]
    #: total movable cell area of movebounds in the witness
    demand: float
    #: capacity of the union of the witness areas (at the density target)
    capacity: float
    density_target: float

    @property
    def deficit(self) -> float:
        return max(0.0, self.demand - self.capacity)

    @property
    def relaxation_needed(self) -> float:
        """Capacity multiplier that would satisfy the witness alone."""
        if self.capacity <= 0:
            return float("inf")
        return self.demand / self.capacity

    def summary(self) -> str:
        return (
            f"movebound subset {sorted(self.witness)} violates condition "
            f"(1): demand {self.demand:.1f} > capacity {self.capacity:.1f} "
            f"at density {self.density_target:.2f} "
            f"(deficit {self.deficit:.1f})"
        )


def _witness_condition_one(
    netlist: Netlist,
    bounds: MoveBoundSet,
    witness: FrozenSet[str],
    density_target: float,
) -> Tuple[float, float]:
    """Demand and capacity sides of condition (1) for the subset."""
    from repro.feasibility.check import _cluster_sizes

    sizes = _cluster_sizes(netlist, bounds)
    demand = sum(sizes.get(name, 0.0) for name in witness)
    union = RectSet()
    by_name = {b.name: b for b in bounds.all_bounds()}
    for name in witness:
        bound = by_name.get(name)
        if bound is not None:
            union = union.union(bound.area)
    capacity = union.subtract(netlist.blockages).area * density_target
    return demand, capacity


def diagnose_infeasibility(
    netlist: Netlist,
    bounds: MoveBoundSet,
    decomposition: Optional[RegionDecomposition] = None,
    density_target: float = 1.0,
    report: Optional[FeasibilityReport] = None,
) -> Optional[InfeasibilityDiagnosis]:
    """Full condition-(1) diagnosis; None when the instance is feasible.

    ``report`` lets callers reuse an already-computed feasibility check.
    """
    from repro.feasibility.check import check_feasibility

    if report is None:
        report = check_feasibility(
            netlist, bounds, decomposition, density_target
        )
    if report.feasible:
        return None
    witness = report.witness or frozenset()
    demand, capacity = _witness_condition_one(
        netlist, bounds, witness, density_target
    )
    incr("resilience.diagnoses")
    return InfeasibilityDiagnosis(witness, demand, capacity, density_target)


def raise_infeasible(
    diagnosis: InfeasibilityDiagnosis, *, stage: str
) -> None:
    """Raise the canonical :class:`InfeasibleInputError` for a diagnosis."""
    raise InfeasibleInputError(
        diagnosis.summary(),
        witness=diagnosis.witness,
        deficit=diagnosis.deficit,
        stage=stage,
        context={"density_target": diagnosis.density_target},
    )


def relax_to_feasible(
    netlist: Netlist,
    bounds: MoveBoundSet,
    decomposition: Optional[RegionDecomposition] = None,
    density_target: float = 1.0,
    max_relax: float = 8.0,
    tol: float = 0.02,
) -> Tuple[float, FeasibilityReport]:
    """Smallest uniform capacity relaxation making the instance feasible.

    Returns ``(factor, report)`` where ``factor >= 1`` multiplies the
    density target (capacities scale linearly in it) and ``report`` is
    the feasibility check at the relaxed target.  Raises
    :class:`InfeasibleInputError` when even ``max_relax`` is not enough
    — e.g. a movebound whose admissible area is empty, which no finite
    relaxation can fix.
    """
    from repro.feasibility.check import check_feasibility

    def probe(factor: float) -> FeasibilityReport:
        return check_feasibility(
            netlist, bounds, decomposition, density_target * factor
        )

    report = probe(1.0)
    if report.feasible:
        return 1.0, report

    lo, hi = 1.0, 2.0
    hi_report = probe(hi)
    while not hi_report.feasible and hi < max_relax:
        lo, hi = hi, min(hi * 2.0, max_relax)
        hi_report = probe(hi)
    if not hi_report.feasible:
        diagnosis = diagnose_infeasibility(
            netlist,
            bounds,
            decomposition,
            density_target,
            report=hi_report,
        )
        raise InfeasibleInputError(
            f"instance stays infeasible even at {max_relax:.1f}x relaxed "
            f"capacities: {diagnosis.summary() if diagnosis else 'no witness'}",
            witness=hi_report.witness,
            deficit=hi_report.deficit,
            stage="resilience.relax",
            context={"max_relax": max_relax},
        )

    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        mid_report = probe(mid)
        if mid_report.feasible:
            hi, hi_report = mid, mid_report
        else:
            lo = mid
    incr("resilience.relaxed_runs")
    return hi, hi_report
