"""Deterministic fault injection for resilience testing.

A *fault plan* maps instrumented sites to fault kinds.  The pipeline
calls :func:`inject` at each site; when the plan has an armed rule for
that site the call raises the mapped structured exception (or, for
``perturb`` rules, :func:`perturbation` returns a nonzero epsilon the
caller applies).  With no plan installed the hooks are a dict lookup —
cheap enough to leave in production code paths.

Plan syntax (env ``REPRO_FAULT_PLAN`` or :func:`install_fault_plan`)::

    site=kind[:arg][@n|#k] [; site=kind...]

* ``site`` — an instrumented point, e.g. ``solver.ns``, ``solver.ssp``,
  ``solver.lp``, ``solver.heur``, ``stage.feasibility``,
  ``stage.fbp.realize``, ``stage.legalize``, ``stage.place.level``,
  ``ckpt.write``, ``ckpt.corrupt``, ``worker.kill``, ``worker.stall``,
  the service-layer sites ``svc.accept``, ``svc.dispatch``,
  ``svc.child.kill``, ``svc.child.stall``, ``svc.result.corrupt``
  (see docs/service.md — the ``svc.child.*``/``svc.result.*`` sites
  fire inside the job child process, per attempt), and the ECO
  transaction sites ``eco.validate``, ``eco.apply``, ``eco.commit``,
  ``eco.commit.entry``, ``eco.rollback`` (see docs/incremental.md —
  ``eco.commit.entry`` fires between the journal's snapshot and entry
  writes; ``corrupt`` at ``eco.commit`` flips journal-entry bytes
  after checksumming).
* ``kind`` — what to do when the site is hit:

  - ``budget``   raise :class:`SolverBudgetExceeded` (a solver stall,
    as if the iteration budget had run out),
  - ``numerics`` raise :class:`SolverNumericsError`,
  - ``stage``    raise :class:`PipelineStageError`,
  - ``infeasible`` raise :class:`InfeasibleInputError`,
  - ``perturb:EPS`` do not raise; make :func:`perturbation` return
    ``EPS`` at this site (numeric perturbation of costs),
  - ``kill``     hard-exit the process via ``os._exit(1)`` — no
    cleanup, no atexit, equivalent to ``SIGKILL`` landing at the site
    (crash-safety tests of the durable run state and worker pool),
  - ``stall:SECONDS`` sleep ``SECONDS`` at the site (a hung worker or
    a wedged I/O path; deadline supervision must recover),
  - ``corrupt``  do not raise; make :func:`corruption` return True at
    this site (the checkpoint writer flips payload bytes, exercising
    checksum detection and quarantine on the next read).

* ``@n`` — fire only on the n-th hit of the site (1-based);
  ``#k`` — fire on the first k hits, then disarm.  Default: every hit.

Hits are counted per process, deterministically — the same run hits the
same sites in the same order, so a plan reproduces exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.resilience.errors import (
    InfeasibleInputError,
    PipelineStageError,
    SolverBudgetExceeded,
    SolverNumericsError,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "inject",
    "perturbation",
    "corruption",
    "install_fault_plan",
    "reset_faults",
    "active_plan",
    "ENV_VAR",
]

ENV_VAR = "REPRO_FAULT_PLAN"

_KINDS = (
    "budget", "numerics", "stage", "infeasible", "perturb",
    "kill", "stall", "corrupt",
)

#: kinds that never raise from :func:`inject` — they surface through a
#: dedicated query helper instead
_QUERY_KINDS = ("perturb", "corrupt")


@dataclass
class FaultRule:
    """One ``site=kind`` entry of a fault plan."""

    site: str
    kind: str
    arg: float = 0.0
    only_hit: Optional[int] = None  # @n — fire on the n-th hit only
    max_fires: Optional[int] = None  # #k — fire on the first k hits
    hits: int = 0
    fires: int = 0

    def should_fire(self) -> bool:
        self.hits += 1
        if self.only_hit is not None and self.hits != self.only_hit:
            return False
        if self.max_fires is not None and self.fires >= self.max_fires:
            return False
        self.fires += 1
        return True

    def raise_fault(self) -> None:
        """Raise the structured exception this rule maps to — or, for
        the process-level kinds, kill/stall the process right here."""
        site, msg = self.site, f"injected fault at {self.site}"
        solver = site.split(".", 1)[1] if site.startswith("solver.") else ""
        if self.kind == "kill":
            # SIGKILL semantics: no cleanup, no buffered-I/O flush
            os._exit(1)
        if self.kind == "stall":
            import time

            time.sleep(self.arg)
            return
        if self.kind == "budget":
            raise SolverBudgetExceeded(
                msg, solver=solver, stage=site,
                context={"injected": True},
            )
        if self.kind == "numerics":
            raise SolverNumericsError(
                msg, solver=solver, stage=site,
                context={"injected": True},
            )
        if self.kind == "infeasible":
            raise InfeasibleInputError(
                msg, stage=site, context={"injected": True}
            )
        raise PipelineStageError(
            msg, stage=site, context={"injected": True}
        )


@dataclass
class FaultPlan:
    """A parsed, stateful fault plan."""

    rules: Dict[str, FaultRule] = field(default_factory=dict)
    spec: str = ""

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        plan = cls(spec=spec)
        for entry in spec.replace(",", ";").split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ValueError(
                    f"fault plan entry {entry!r} is not site=kind"
                )
            site, kind = entry.split("=", 1)
            site, kind = site.strip(), kind.strip()
            only_hit = max_fires = None
            if "@" in kind:
                kind, n = kind.rsplit("@", 1)
                only_hit = int(n)
            elif "#" in kind:
                kind, k = kind.rsplit("#", 1)
                max_fires = int(k)
            arg = 0.0
            if ":" in kind:
                kind, raw = kind.split(":", 1)
                arg = float(raw)
            if kind not in _KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} (choose from {_KINDS})"
                )
            plan.rules[site] = FaultRule(
                site, kind, arg, only_hit, max_fires
            )
        return plan

    def fire(self, site: str) -> Optional[FaultRule]:
        rule = self.rules.get(site)
        if rule is None or not rule.should_fire():
            return None
        return rule


#: None = not yet loaded; an empty FaultPlan = loaded, nothing to do.
_plan: Optional[FaultPlan] = None


def active_plan() -> FaultPlan:
    """The currently installed plan (loads the env plan on first use)."""
    global _plan
    if _plan is None:
        spec = os.environ.get(ENV_VAR, "")
        _plan = FaultPlan.parse(spec) if spec else FaultPlan()
    return _plan


def install_fault_plan(spec: str) -> FaultPlan:
    """Install a plan programmatically (tests, ``--fault-plan``)."""
    global _plan
    _plan = FaultPlan.parse(spec)
    return _plan


def reset_faults() -> None:
    """Drop the installed plan; the env is re-read on next use."""
    global _plan
    _plan = None


def inject(site: str) -> None:
    """Fault hook: raise the planned fault for ``site``, if any.

    ``perturb``/``corrupt`` rules never raise here — they surface
    through :func:`perturbation` / :func:`corruption` instead.
    ``kill`` rules hard-exit the process; ``stall`` rules sleep and
    return.
    """
    plan = active_plan()
    if not plan.rules:
        return
    rule = plan.fire(site)
    if rule is None or rule.kind in _QUERY_KINDS:
        return
    from repro.obs import incr

    incr("faults.injected")
    incr(f"faults.{site}")
    rule.raise_fault()


def perturbation(site: str) -> float:
    """Epsilon for a planned numeric perturbation at ``site`` (0 = none)."""
    plan = active_plan()
    if not plan.rules:
        return 0.0
    rule = plan.fire(site)
    if rule is None or rule.kind != "perturb":
        return 0.0
    from repro.obs import incr

    incr("faults.injected")
    incr(f"faults.{site}")
    return rule.arg


def corruption(site: str) -> bool:
    """True when a planned ``corrupt`` rule fires at ``site``.

    The caller (the checkpoint writer) is responsible for actually
    mangling the bytes it is about to persist.
    """
    plan = active_plan()
    if not plan.rules:
        return False
    rule = plan.fire(site)
    if rule is None or rule.kind != "corrupt":
        return False
    from repro.obs import incr

    incr("faults.injected")
    incr(f"faults.{site}")
    return True
