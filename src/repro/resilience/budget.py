"""Solver budgets: iteration and wall-time limits.

A :class:`SolverBudget` is immutable configuration; a
:class:`BudgetClock` is the per-solve ticking state derived from it.
Solver inner loops call :meth:`BudgetClock.tick` once per unit of work
(pivot, augmenting path); the clock raises
:class:`~repro.resilience.errors.SolverBudgetExceeded` the moment a
limit is crossed, which guarantees termination even on degenerate or
fault-injected instances.

A process-wide default budget backs all solves that are not handed an
explicit budget.  It is initialised from the environment
(``REPRO_MAX_SOLVER_ITERS`` / ``REPRO_SOLVER_TIMEOUT``) and settable by
the CLI flags ``--max-solver-iters`` / ``--solver-timeout``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from repro.resilience.errors import SolverBudgetExceeded

__all__ = [
    "SolverBudget",
    "BudgetClock",
    "UNLIMITED",
    "get_default_budget",
    "set_default_budget",
    "budget_from_env",
]

#: How many ticks pass between wall-clock reads (time.monotonic is
#: cheap but not free; iteration counts dominate budget precision).
_TIME_CHECK_MASK = 0xFF


@dataclass(frozen=True)
class SolverBudget:
    """Limits applied to a single solver invocation.

    ``None`` means unlimited for either dimension.
    """

    max_iters: Optional[int] = None
    max_seconds: Optional[float] = None

    @property
    def unlimited(self) -> bool:
        return self.max_iters is None and self.max_seconds is None

    def clock(self, solver: str = "") -> "BudgetClock":
        """Start a ticking clock for one solve."""
        return BudgetClock(self, solver)


UNLIMITED = SolverBudget()


class BudgetClock:
    """Per-solve budget state; raises on exhaustion."""

    __slots__ = ("budget", "solver", "iterations", "_t0")

    def __init__(self, budget: SolverBudget, solver: str = "") -> None:
        self.budget = budget
        self.solver = solver
        self.iterations = 0
        self._t0 = time.monotonic()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._t0

    def tick(self, n: int = 1) -> None:
        """Record ``n`` units of solver work; raise when over budget."""
        self.iterations += n
        b = self.budget
        if b.max_iters is not None and self.iterations > b.max_iters:
            raise SolverBudgetExceeded(
                f"iteration budget exhausted ({self.iterations} > "
                f"{b.max_iters})",
                solver=self.solver,
                iterations=self.iterations,
                elapsed=self.elapsed,
                stage=f"solver.{self.solver}" if self.solver else None,
            )
        if b.max_seconds is not None and (
            self.iterations & _TIME_CHECK_MASK
        ) == 0:
            self.check_time()

    def check_time(self) -> None:
        """Unconditional wall-time check (call at phase boundaries)."""
        b = self.budget
        if b.max_seconds is not None and self.elapsed > b.max_seconds:
            raise SolverBudgetExceeded(
                f"wall-time budget exhausted "
                f"({self.elapsed:.2f}s > {b.max_seconds:.2f}s)",
                solver=self.solver,
                iterations=self.iterations,
                elapsed=self.elapsed,
                stage=f"solver.{self.solver}" if self.solver else None,
            )


def budget_from_env() -> SolverBudget:
    """Budget configured by the environment (unlimited when unset)."""
    iters = os.environ.get("REPRO_MAX_SOLVER_ITERS")
    seconds = os.environ.get("REPRO_SOLVER_TIMEOUT")
    return SolverBudget(
        max_iters=int(iters) if iters else None,
        max_seconds=float(seconds) if seconds else None,
    )


_default_budget: Optional[SolverBudget] = None


def get_default_budget() -> SolverBudget:
    """The process-wide budget applied when a solve has no explicit one."""
    global _default_budget
    if _default_budget is None:
        _default_budget = budget_from_env()
    return _default_budget


def set_default_budget(budget: Optional[SolverBudget]) -> None:
    """Override the process-wide default (``None`` re-reads the env)."""
    global _default_budget
    _default_budget = budget
