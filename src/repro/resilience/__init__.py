"""Resilience layer: classified failures, solver budgets and
fallbacks, infeasibility diagnosis, checkpointing, fault injection.

Five pieces (see docs/resilience.md):

* :mod:`repro.resilience.errors` — the :class:`ReproError` taxonomy
  every pipeline failure is classified under, with CLI exit codes;
* :mod:`repro.resilience.budget` — iteration/wall-time
  :class:`SolverBudget` limits enforced inside the flow solvers;
* :mod:`repro.resilience.solver` — :class:`ResilientSolver`, the
  network-simplex -> SSP -> transportation-heuristic fallback chain;
* :mod:`repro.resilience.diagnose` / :mod:`repro.resilience.validate`
  — min-cut infeasibility diagnosis (condition (1) witness), graceful
  capacity relaxation, and up-front input validation;
* :mod:`repro.resilience.faultinject` / :mod:`repro.resilience.checkpoint`
  — the deterministic fault-injection harness (``REPRO_FAULT_PLAN``)
  and level checkpoint/resume of the recursive FBP schedule.
"""

from repro.resilience.budget import (
    BudgetClock,
    SolverBudget,
    UNLIMITED,
    budget_from_env,
    get_default_budget,
    set_default_budget,
)
from repro.resilience.checkpoint import LevelCheckpoint, ScheduleCheckpointer
from repro.resilience.diagnose import (
    InfeasibilityDiagnosis,
    diagnose_infeasibility,
    raise_infeasible,
    relax_to_feasible,
)
from repro.resilience.errors import (
    EXIT_BUDGET,
    EXIT_INFEASIBLE,
    EXIT_INTERNAL,
    EXIT_SERVICE,
    DeltaValidationError,
    InfeasibleInputError,
    JobCancelledError,
    PipelineStageError,
    ReproError,
    ServiceOverloadError,
    SolverBudgetExceeded,
    SolverNumericsError,
)
from repro.resilience.faultinject import (
    FaultPlan,
    FaultRule,
    active_plan,
    corruption,
    inject,
    install_fault_plan,
    perturbation,
    reset_faults,
)
from repro.resilience.solver import DEFAULT_CHAIN, ResilientSolver, SolveAttempt
from repro.resilience.validate import instance_problems, validate_instance

__all__ = [
    # errors
    "ReproError",
    "InfeasibleInputError",
    "DeltaValidationError",
    "SolverBudgetExceeded",
    "SolverNumericsError",
    "PipelineStageError",
    "ServiceOverloadError",
    "JobCancelledError",
    "EXIT_INFEASIBLE",
    "EXIT_BUDGET",
    "EXIT_INTERNAL",
    "EXIT_SERVICE",
    # budgets
    "SolverBudget",
    "BudgetClock",
    "UNLIMITED",
    "budget_from_env",
    "get_default_budget",
    "set_default_budget",
    # solver chain
    "ResilientSolver",
    "SolveAttempt",
    "DEFAULT_CHAIN",
    # diagnosis + validation
    "InfeasibilityDiagnosis",
    "diagnose_infeasibility",
    "relax_to_feasible",
    "raise_infeasible",
    "validate_instance",
    "instance_problems",
    # fault injection
    "FaultPlan",
    "FaultRule",
    "inject",
    "perturbation",
    "corruption",
    "install_fault_plan",
    "reset_faults",
    "active_plan",
    # checkpointing
    "ScheduleCheckpointer",
    "LevelCheckpoint",
]
