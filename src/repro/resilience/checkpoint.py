"""Checkpoint/resume for the recursive FBP schedule.

The multilevel placer runs levels 1..L; each level mutates every cell
position.  A mid-level failure (solver stall, injected fault, numeric
blow-up) used to lose the whole run.  The checkpointer snapshots the
placement after every completed level; on a retryable
:class:`ReproError` the driver restores the last completed level and
re-runs the failed one, so a *transient* failure costs one level, not
the run.  A second failure of the same level is considered permanent
and surfaces as a :class:`PipelineStageError` naming the level.

Only the *latest* snapshot is retained: the retry protocol never
reaches further back than one level, and keeping the full stack made
checkpoint memory grow as O(levels x cells).  Durable copies of every
level live on disk when the run uses a
:class:`~repro.runstate.DurableRunState` (``--run-dir``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netlist import Netlist
from repro.obs import incr
from repro.resilience.errors import PipelineStageError

__all__ = ["LevelCheckpoint", "ScheduleCheckpointer"]


@dataclass
class LevelCheckpoint:
    """Placement state after a completed level."""

    level: int
    snapshot: object  # PlacementSnapshot (opaque to this module)


@dataclass
class ScheduleCheckpointer:
    """In-memory checkpoint (latest level only) of a netlist's placement."""

    netlist: Netlist
    latest: Optional[LevelCheckpoint] = None
    saves: int = 0
    restores: int = 0

    def save(self, level: int) -> None:
        """Record the placement as the state after ``level``,
        releasing the previous level's snapshot."""
        self.latest = LevelCheckpoint(level, self.netlist.snapshot())
        self.saves += 1
        incr("place.checkpoint.saved")

    @property
    def last_level(self) -> Optional[int]:
        return self.latest.level if self.latest is not None else None

    def restore_latest(self) -> int:
        """Restore the most recent checkpoint; returns its level."""
        if self.latest is None:
            raise PipelineStageError(
                "no checkpoint to restore", stage="place.checkpoint"
            )
        self.netlist.restore(self.latest.snapshot)
        self.restores += 1
        incr("place.checkpoint.restored")
        return self.latest.level
