"""Checkpoint/resume for the recursive FBP schedule.

The multilevel placer runs levels 1..L; each level mutates every cell
position.  A mid-level failure (solver stall, injected fault, numeric
blow-up) used to lose the whole run.  The checkpointer snapshots the
placement after every completed level; on a retryable
:class:`ReproError` the driver restores the last completed level and
re-runs the failed one, so a *transient* failure costs one level, not
the run.  A second failure of the same level is considered permanent
and surfaces as a :class:`PipelineStageError` naming the level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.netlist import Netlist
from repro.obs import incr
from repro.resilience.errors import PipelineStageError

__all__ = ["LevelCheckpoint", "ScheduleCheckpointer"]


@dataclass
class LevelCheckpoint:
    """Placement state after a completed level."""

    level: int
    snapshot: object  # PlacementSnapshot (opaque to this module)


@dataclass
class ScheduleCheckpointer:
    """In-memory checkpoint stack over a netlist's placement."""

    netlist: Netlist
    checkpoints: List[LevelCheckpoint] = field(default_factory=list)
    restores: int = 0

    def save(self, level: int) -> None:
        """Record the placement as the state after ``level``."""
        self.checkpoints.append(
            LevelCheckpoint(level, self.netlist.snapshot())
        )
        incr("place.checkpoint.saved")

    @property
    def last_level(self) -> Optional[int]:
        return self.checkpoints[-1].level if self.checkpoints else None

    def restore_latest(self) -> int:
        """Restore the most recent checkpoint; returns its level."""
        if not self.checkpoints:
            raise PipelineStageError(
                "no checkpoint to restore", stage="place.checkpoint"
            )
        ckpt = self.checkpoints[-1]
        self.netlist.restore(ckpt.snapshot)
        self.restores += 1
        incr("place.checkpoint.restored")
        return ckpt.level
