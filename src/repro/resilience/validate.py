"""Up-front input validation for placement instances.

The placers and the CLI call :func:`validate_instance` before doing any
real work, so malformed inputs fail immediately with an
:class:`InfeasibleInputError` carrying an actionable message — instead
of surfacing later as a confusing solver failure deep inside the
pipeline (a NaN QP, a zero-capacity transportation instance, a
movebound nobody can reach).
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.movebounds import DEFAULT_BOUND, MoveBoundSet
from repro.netlist import Netlist
from repro.resilience.errors import InfeasibleInputError

__all__ = ["validate_instance", "instance_problems"]


def instance_problems(
    netlist: Netlist,
    bounds: Optional[MoveBoundSet] = None,
    density_target: float = 1.0,
) -> List[str]:
    """All input problems found, each as one actionable message."""
    problems: List[str] = []

    if density_target <= 0:
        problems.append(
            f"density target {density_target} must be positive — region "
            f"capacities scale with it, so 0 or negative leaves no capacity"
        )

    die = netlist.die
    if die.area <= 0:
        problems.append(
            f"die {die} has non-positive area; check the Bookshelf .scl/die line"
        )

    # --- cells -------------------------------------------------------
    bad_size = [
        c.name
        for c in netlist.cells
        if c.width < 0 or c.height < 0 or not math.isfinite(c.size)
    ]
    if bad_size:
        problems.append(
            f"{len(bad_size)} cell(s) with negative or non-finite "
            f"dimensions (e.g. {bad_size[0]!r}); fix the .nodes entries"
        )
    nan_pos = [
        c.name
        for c in netlist.cells
        if not (
            math.isfinite(float(netlist.x[c.index]))
            and math.isfinite(float(netlist.y[c.index]))
        )
    ]
    if nan_pos:
        problems.append(
            f"{len(nan_pos)} cell(s) with NaN/inf positions "
            f"(e.g. {nan_pos[0]!r}); re-run global placement or fix the .pl"
        )

    if bounds is None:
        return problems

    # --- movebounds --------------------------------------------------
    known = set(bounds.names()) | {DEFAULT_BOUND}
    cells_per_bound: dict = {}
    for c in netlist.cells:
        if c.fixed:
            continue
        name = c.movebound if c.movebound is not None else DEFAULT_BOUND
        cells_per_bound[name] = cells_per_bound.get(name, 0) + 1
    unknown = sorted(set(cells_per_bound) - known)
    if unknown:
        problems.append(
            f"cells reference undeclared movebound(s) {unknown}; declare "
            f"them or drop the assignment"
        )

    # zero-area and out-of-die rectangles are rejected at movebound
    # construction (InfeasibleInputError from MoveBound/MoveBoundSet);
    # here we only need the checks that depend on the whole instance.
    for bound in bounds:
        usable = bound.area.subtract(netlist.blockages)
        if usable.area <= 0 and cells_per_bound.get(bound.name, 0) > 0:
            problems.append(
                f"movebound {bound.name!r} has {cells_per_bound[bound.name]} "
                f"cell(s) but its rectangle union (minus blockages) is "
                f"empty — no placement can satisfy it; widen A({bound.name}) "
                f"or unassign the cells"
            )

    return problems


def validate_instance(
    netlist: Netlist,
    bounds: Optional[MoveBoundSet] = None,
    density_target: float = 1.0,
) -> None:
    """Raise :class:`InfeasibleInputError` listing every input problem."""
    problems = instance_problems(netlist, bounds, density_target)
    if problems:
        raise InfeasibleInputError(
            "invalid instance: " + "; ".join(problems),
            stage="validate",
            context={"problems": len(problems)},
        )
