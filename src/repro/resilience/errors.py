"""Structured exception taxonomy for the FBP pipeline.

Every failure the pipeline can produce is classified under
:class:`ReproError`, carrying enough context (stage, window, level,
free-form key/values) to emit a one-line diagnosis instead of a raw
traceback.  The subclasses double-inherit from the builtin exception
the pre-taxonomy code raised (``ValueError`` / ``RuntimeError`` /
``TimeoutError`` / ``ArithmeticError``) so existing ``except`` clauses
and tests keep working.

Exit-code contract (used by the CLI):

==  ==========================================================
2   :class:`InfeasibleInputError` — the *input* admits no
    placement (Theorem 1/2 witness attached when known) or is
    malformed (zero-area movebounds, negative capacities, ...).
3   :class:`SolverBudgetExceeded` — an iteration or wall-time
    budget terminated a solver before optimality.
4   :class:`SolverNumericsError`, :class:`PipelineStageError`,
    and any other :class:`ReproError` — internal failures.
5   :class:`ServiceOverloadError` / :class:`JobCancelledError`
    — the placement service shed, refused, or cancelled a job;
    the *request* failed, not the daemon or the input.
==  ==========================================================
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional

__all__ = [
    "ReproError",
    "InfeasibleInputError",
    "DeltaValidationError",
    "SolverBudgetExceeded",
    "SolverNumericsError",
    "PipelineStageError",
    "ServiceOverloadError",
    "JobCancelledError",
    "EXIT_INFEASIBLE",
    "EXIT_BUDGET",
    "EXIT_INTERNAL",
    "EXIT_SERVICE",
]

EXIT_INFEASIBLE = 2
EXIT_BUDGET = 3
EXIT_INTERNAL = 4
EXIT_SERVICE = 5


class ReproError(Exception):
    """Base of all classified pipeline failures.

    Parameters beyond ``message`` are keyword-only context: ``stage``
    is the dot-separated pipeline stage (matching the span naming
    convention, e.g. ``"fbp.realize"``), ``window``/``level`` locate
    the failure inside the recursive schedule, and ``context`` holds
    any further key/value detail worth surfacing.
    """

    exit_code = EXIT_INTERNAL

    def __init__(
        self,
        message: str,
        *,
        stage: Optional[str] = None,
        window: Optional[int] = None,
        level: Optional[int] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.stage = stage
        self.window = window
        self.level = level
        self.context: Dict[str, Any] = dict(context or {})

    def diagnosis(self) -> str:
        """One-line user-facing diagnosis: ``[stage] message (k=v ...)``."""
        parts = []
        if self.stage:
            parts.append(f"[{self.stage}]")
        parts.append(self.message)
        detail = dict(self.context)
        if self.level is not None:
            detail["level"] = self.level
        if self.window is not None:
            detail["window"] = self.window
        if detail:
            kv = " ".join(f"{k}={detail[k]}" for k in sorted(detail))
            parts.append(f"({kv})")
        return " ".join(parts)


class InfeasibleInputError(ReproError, ValueError):
    """The input instance admits no placement, or is malformed.

    ``witness`` (when known) is the movebound subset M' violating
    condition (1) — extracted from the min cut of the Theorem-1/2
    MaxFlow check; ``deficit`` is the cell area that cannot be
    accommodated.
    """

    exit_code = EXIT_INFEASIBLE

    def __init__(
        self,
        message: str,
        *,
        witness: Optional[FrozenSet[str]] = None,
        deficit: float = 0.0,
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.witness = frozenset(witness) if witness is not None else None
        self.deficit = float(deficit)

    def diagnosis(self) -> str:
        line = super().diagnosis()
        if self.witness:
            line += f" | violating movebound subset: {sorted(self.witness)}"
        if self.deficit > 0:
            line += f" | deficit: {self.deficit:.1f} area units"
        return line


class DeltaValidationError(InfeasibleInputError):
    """An ECO delta was refused before any state was touched.

    Raised by the transactional re-place engine
    (:mod:`repro.eco`) when an incoming netlist/movebound/density
    delta fails its structural checks or would make the instance
    infeasible (the condition (1) witness of the touched regions is
    attached, like any other :class:`InfeasibleInputError`).  The
    pre-delta placement is guaranteed untouched: validation runs
    against shadow state only.  Exit code 2 — the *request* was bad,
    not the engine.
    """

    def __init__(
        self,
        message: str,
        *,
        delta_digest: str = "",
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.delta_digest = delta_digest

    def diagnosis(self) -> str:
        line = super().diagnosis()
        if self.delta_digest:
            line += f" | delta={self.delta_digest}"
        return line


class SolverBudgetExceeded(ReproError, TimeoutError):
    """A solver hit its iteration or wall-time budget."""

    exit_code = EXIT_BUDGET

    def __init__(
        self,
        message: str,
        *,
        solver: str = "",
        iterations: int = 0,
        elapsed: float = 0.0,
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.solver = solver
        self.iterations = int(iterations)
        self.elapsed = float(elapsed)

    def diagnosis(self) -> str:
        line = super().diagnosis()
        extras = []
        if self.solver:
            extras.append(f"solver={self.solver}")
        if self.iterations:
            extras.append(f"iterations={self.iterations}")
        if self.elapsed:
            extras.append(f"elapsed={self.elapsed:.2f}s")
        if extras:
            line += " | " + " ".join(extras)
        return line


class SolverNumericsError(ReproError, ArithmeticError):
    """A solver produced numerically inconsistent state (cycling,
    NaN/inf flow, an LP backend reporting failure)."""

    def __init__(self, message: str, *, solver: str = "", **kwargs: Any) -> None:
        super().__init__(message, **kwargs)
        self.solver = solver


class PipelineStageError(ReproError, RuntimeError):
    """A pipeline stage failed for reasons other than input
    infeasibility or solver budgets (the catch-all internal error)."""


class ServiceOverloadError(ReproError, RuntimeError):
    """The placement service refused or shed a job under overload.

    Structured load shedding: the admission controller raises this
    instead of letting a full queue crash (or silently stall) the
    daemon.  ``tenant`` names the quota/queue that overflowed and
    ``shed_job`` the job id that was evicted, when the overload was
    resolved by shedding rather than refusal.
    """

    exit_code = EXIT_SERVICE

    def __init__(
        self,
        message: str,
        *,
        tenant: str = "",
        shed_job: str = "",
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.tenant = tenant
        self.shed_job = shed_job

    def diagnosis(self) -> str:
        line = super().diagnosis()
        if self.tenant:
            line += f" | tenant={self.tenant}"
        if self.shed_job:
            line += f" | shed_job={self.shed_job}"
        return line


class JobCancelledError(ReproError, RuntimeError):
    """A service job was cancelled before producing a result."""

    exit_code = EXIT_SERVICE

    def __init__(self, message: str, *, job_id: str = "", **kwargs: Any) -> None:
        super().__init__(message, **kwargs)
        self.job_id = job_id
