"""Command-line interface: ``repro-place`` (or ``python -m repro``).

Subcommands:

``generate``  — synthesize a suite instance and write Bookshelf files.
``place``     — place a Bookshelf instance with a chosen placer.
``check``     — feasibility (Theorem 2) and legality audit.
``score``     — HPWL + ISPD2006-style scoring of a placed instance.
``replace``   — transactional incremental re-place (ECO deltas with a
                durable journal; docs/incremental.md).

Service mode (docs/service.md):

``serve``     — run the placement-service daemon on a state dir.
``submit``    — submit a place/check/replace job to a daemon.
``status``    — one job's lifecycle state.
``result``    — a job's result (``--wait`` blocks); exits with the
                job's mapped code on failure (overload/cancel = 5).
``cancel``    — cancel a queued or running job.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro.bookshelf import load_instance, save_instance
from repro.feasibility import check_feasibility
from repro.legalize import check_legality
from repro.metrics import density_penalty
from repro.obs import (
    get_tracer,
    set_invariants_enabled,
    write_stats_json,
)
from repro.resilience import (
    ReproError,
    SolverBudget,
    install_fault_plan,
    set_default_budget,
)


def _make_placer(name: str):
    from repro.place import (
        BonnPlaceFBP,
        KraftwerkPlacer,
        RecursivePlacer,
        RQLPlacer,
    )

    placers = {
        "fbp": BonnPlaceFBP,
        "rql": RQLPlacer,
        "kraftwerk": KraftwerkPlacer,
        "recursive": RecursivePlacer,
    }
    if name not in placers:
        raise SystemExit(
            f"unknown placer {name!r}; choose from {sorted(placers)}"
        )
    return placers[name]()


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.workloads import (
        ISPD_SUITE,
        MOVEBOUND_SUITE,
        TABLE2_SUITE,
        ispd_like_instance,
        movebound_instance,
        table2_instance,
    )

    name = args.instance
    if args.suite == "table2" or (args.suite == "auto" and name in TABLE2_SUITE and not args.movebounds):
        inst = table2_instance(name, seed=args.seed)
    elif args.suite == "movebound" or (args.suite == "auto" and name in MOVEBOUND_SUITE and args.movebounds):
        inst = movebound_instance(name, seed=args.seed, exclusive=args.exclusive)
    elif args.suite == "ispd" or (args.suite == "auto" and name in ISPD_SUITE):
        inst = ispd_like_instance(name, seed=args.seed)
    else:
        raise SystemExit(f"unknown instance {name!r}")
    save_instance(args.out, inst.netlist, inst.bounds)
    print(
        f"wrote {inst.netlist.num_cells} cells, {inst.netlist.num_nets} nets, "
        f"{len(inst.bounds)} movebounds to {args.out}/{name}.*"
    )
    return 0


def cmd_place(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.runstate import DurableRunState, WindowSolverPool, activated

    if args.resume and not args.run_dir:
        raise SystemExit("--resume requires --run-dir")
    netlist, bounds = load_instance(args.dir, args.instance)
    placer = _make_placer(args.placer)
    if args.relax_infeasible and hasattr(placer, "options"):
        placer.options.relax_infeasible = True
    if hasattr(placer, "options"):
        if args.no_warm_start:
            placer.options.warm_start = False
        if args.no_region_cache:
            placer.options.region_cache = False
        if args.transport_method is not None:
            placer.options.transport_method = args.transport_method
        if args.shard_tiles is not None:
            placer.options.shard_tiles = args.shard_tiles
        if args.realize_tiles is not None:
            placer.options.realize_tiles = args.realize_tiles
    if args.run_dir:
        if not hasattr(placer, "run_state"):
            raise SystemExit(
                f"--run-dir is only supported by the fbp placer, "
                f"not {args.placer!r}"
            )
        placer.run_state = DurableRunState(
            args.run_dir, resume=args.resume
        )
    with ExitStack() as stack:
        if args.pool_workers > 0:
            pool = stack.enter_context(
                WindowSolverPool(
                    args.pool_workers,
                    task_timeout=args.pool_task_timeout,
                )
            )
            stack.enter_context(activated(pool))
        result = placer.place(netlist, bounds)
    factor = getattr(placer, "relax_factor", 1.0)
    if factor > 1.0:
        print(
            f"warning: infeasible instance placed with capacities "
            f"relaxed {factor:.2f}x",
            file=sys.stderr,
        )
    save_instance(args.out or args.dir, netlist, bounds)
    print(
        f"{result.placer} on {result.instance}: HPWL={result.hpwl:.1f} "
        f"global={result.global_seconds:.1f}s legal={result.legal_seconds:.1f}s"
    )
    if result.legality is not None:
        print(f"legality: {result.legality.summary()}")
    return 0 if (result.legality and result.legality.is_legal) else 1


def cmd_check(args: argparse.Namespace) -> int:
    from repro.resilience.diagnose import (
        diagnose_infeasibility,
        relax_to_feasible,
    )

    netlist, bounds = load_instance(args.dir, args.instance)
    report = check_feasibility(netlist, bounds, density_target=args.density)
    print(
        f"feasible: {report.feasible} "
        f"(cell area {report.total_cell_area:.1f}, "
        f"routable {report.routed_area:.1f})"
    )
    if not report.feasible:
        diagnosis = diagnose_infeasibility(
            netlist, bounds, density_target=args.density, report=report
        )
        if diagnosis is not None:
            print(f"diagnosis: {diagnosis.summary()}")
        if args.relax_infeasible:
            factor, _relaxed_report = relax_to_feasible(
                netlist, bounds, density_target=args.density
            )
            print(
                f"feasible with capacities relaxed {factor:.2f}x "
                f"(density target {args.density * factor:.2f})"
            )
    legality = check_legality(netlist, bounds)
    print(f"current placement: {legality.summary()}")
    return 0 if report.feasible else 1


def cmd_score(args: argparse.Namespace) -> int:
    netlist, bounds = load_instance(args.dir, args.instance)
    hpwl = netlist.hpwl()
    dens = density_penalty(netlist, args.density)
    print(f"HPWL        : {hpwl:.1f}")
    print(f"density D   : {100 * dens:.2f}%")
    print(f"HPWL*(1+D)  : {hpwl * (1 + dens):.1f}")
    violations = bounds.violations(netlist) if len(bounds) else []
    print(f"movebound violations: {len(violations)}")
    return 0


def cmd_replace(args: argparse.Namespace) -> int:
    import json

    from repro.eco import EcoEngine, EcoOptions, PlacementDelta
    from repro.place import BonnPlaceFBP

    netlist, bounds = load_instance(args.dir, args.instance)
    if args.delta_file:
        with open(args.delta_file) as f:
            delta = PlacementDelta.from_dict(json.load(f))
    else:
        delta = PlacementDelta()
    engine = EcoEngine(
        netlist,
        bounds,
        placer=BonnPlaceFBP(),
        run_dir=args.run_dir,
        options=EcoOptions(
            verify_solve=args.eco_verify,
            max_hpwl_drift=args.max_hpwl_drift,
            allow_fallback=not args.no_fallback,
        ),
    )
    res = engine.apply(delta)
    save_instance(args.out or args.dir, netlist, engine.bounds)
    print(
        f"eco {res.mode}: txn {res.txn_seq} delta {res.delta_digest} "
        f"HPWL {res.hpwl_pre:.1f} -> {res.hpwl_post:.1f} "
        f"(frontier {res.frontier_windows} windows, "
        f"{res.slots_dropped} warm slots dropped)"
    )
    if res.fallback_reason:
        print(
            f"degraded to full re-solve: {res.fallback_reason}",
            file=sys.stderr,
        )
    legality = check_legality(netlist, engine.bounds)
    print(f"legality: {legality.summary()}")
    return 0 if legality.is_legal else 1


def _service_client(args: argparse.Namespace):
    from repro.service import ServiceClient

    return ServiceClient(
        socket_path=args.socket, tcp_port=args.tcp
    )


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import AdmissionPolicy, ServiceDaemon

    policy = AdmissionPolicy(
        max_queue=args.max_queue,
        max_running=args.max_running,
        tenant_max_running=args.tenant_max_running,
        tenant_max_queued=args.tenant_max_queued,
        tenant_quota_seconds=args.tenant_quota,
        job_timeout=args.job_timeout,
        max_attempts=args.max_attempts,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        respawn_window=args.respawn_window,
        respawn_cap=args.respawn_cap,
    )
    daemon = ServiceDaemon(
        args.state_dir,
        policy=policy,
        socket_path=args.socket,
        tcp_port=args.tcp,
    )
    daemon.serve_forever()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import JobSpec

    options = {}
    if args.relax_infeasible:
        options["relax_infeasible"] = True
    if args.transport_method is not None:
        options["transport_method"] = args.transport_method
    if args.no_legalize:
        options["legalize"] = False
    if args.density is not None:
        options["density"] = args.density
    if args.no_eco:
        options["eco"] = False
    if args.eco_verify:
        options["eco_verify"] = True
    patch = []
    if args.movebound_patch is not None:
        patch = json.loads(args.movebound_patch)
    spec = JobSpec(
        kind=args.kind,
        instance=args.instance,
        dir=os.path.abspath(args.dir),
        tenant=args.tenant,
        priority=args.priority,
        options=options,
        movebound_patch=patch,
    )
    job_id = _service_client(args).submit(spec)
    print(job_id)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    import json

    job = _service_client(args).status(args.job_id)
    print(json.dumps(job, indent=1, sort_keys=True))
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    import json

    reply = _service_client(args).result(
        args.job_id, wait=args.wait, timeout=args.timeout
    )
    if reply.get("pending"):
        print(f"job {args.job_id} is {reply['job']['state']}")
        return 1
    print(json.dumps(reply.get("result"), indent=1, sort_keys=True))
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    reply = _service_client(args).cancel(args.job_id)
    print(f"job {args.job_id}: {reply['state']}")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-place",
        description="Flow-based partitioning placement (DATE 2011 reproduction)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the span/counter report to stderr when done",
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="write the trace + counters as JSON to PATH when done",
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="enable the runtime invariant checks "
        "(same as REPRO_CHECK_INVARIANTS=1)",
    )
    parser.add_argument(
        "--max-solver-iters",
        type=int,
        default=None,
        metavar="N",
        help="iteration budget per flow solve "
        "(same as REPRO_MAX_SOLVER_ITERS)",
    )
    parser.add_argument(
        "--solver-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-time budget per flow solve "
        "(same as REPRO_SOLVER_TIMEOUT)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN",
        help="deterministic fault-injection plan, e.g. "
        "'solver.ns=budget;stage.legalize=stage@2' "
        "(same as REPRO_FAULT_PLAN)",
    )
    parser.add_argument(
        "--flow-backend",
        default=None,
        choices=["object", "array", "batched"],
        help="flow kernel implementation (same as REPRO_FLOW_BACKEND; "
        "default array — the vectorized kernels, bit-identical to the "
        "scalar object kernels by contract; batched additionally packs "
        "same-shaped window transportation solves into one "
        "structure-of-arrays call, still bit-identical)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="synthesize a suite instance")
    g.add_argument("instance")
    g.add_argument("--out", default=".")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--suite", default="auto",
                   choices=["auto", "table2", "movebound", "ispd"])
    g.add_argument("--movebounds", action="store_true")
    g.add_argument("--exclusive", action="store_true")
    g.set_defaults(func=cmd_generate)

    p = sub.add_parser("place", help="place a Bookshelf instance")
    p.add_argument("instance")
    p.add_argument("--dir", default=".")
    p.add_argument("--out", default=None)
    p.add_argument("--placer", default="fbp",
                   choices=["fbp", "rql", "kraftwerk", "recursive"])
    p.add_argument(
        "--relax-infeasible",
        action="store_true",
        help="on an infeasible instance, relax capacities uniformly "
        "and place anyway instead of exiting with code 2",
    )
    p.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="durable run directory: every completed level's placement "
        "is checkpointed (atomic + fsynced) so a killed run can be "
        "resumed with --resume",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed run from the last durable level in "
        "--run-dir; the result is bit-identical to an uninterrupted "
        "run (fresh start when the run directory is empty)",
    )
    p.add_argument(
        "--pool-workers",
        type=int,
        default=int(os.environ.get("REPRO_POOL_WORKERS", "0")),
        metavar="N",
        help="solve the independent per-window transportation problems "
        "on N supervised worker processes (0 = serial; parallel and "
        "serial are bit-identical; env REPRO_POOL_WORKERS)",
    )
    p.add_argument(
        "--shard-tiles",
        type=int,
        default=None,
        metavar="N",
        help="shard each level's FBP flow solve into an N x N grid of "
        "window tiles solved independently (exact when no flow crosses "
        "tile cuts, reported approximation otherwise; default: "
        "monolithic solve)",
    )
    p.add_argument(
        "--realize-tiles",
        type=int,
        default=None,
        metavar="N",
        help="group the final per-window realization solves into an "
        "N x N grid of spatial dispatch units for the worker pool "
        "(default: min(8, grid size); 0/1 = in-process serial; "
        "parallel and serial are bit-identical; only meaningful with "
        "--pool-workers)",
    )
    p.add_argument(
        "--no-warm-start",
        action="store_true",
        help="disable network-simplex warm starts across same-topology "
        "re-solves (warm and cold runs are bit-identical by contract; "
        "this flag exists as an escape hatch and for A/B timing)",
    )
    p.add_argument(
        "--no-region-cache",
        action="store_true",
        help="disable the cross-level region/geometry cache "
        "(bit-identical by contract; escape hatch and A/B timing)",
    )
    p.add_argument(
        "--transport-method",
        default=None,
        choices=["auto", "lp", "ns", "mcf"],
        help="backend of the per-window/repartitioning transportation "
        "solves (default auto = LP; ns enables warm starts)",
    )
    p.add_argument(
        "--pool-task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-window deadline of the worker pool; a worker past "
        "its deadline is killed and its window requeued "
        "(default derives from --solver-timeout)",
    )
    p.set_defaults(func=cmd_place)

    c = sub.add_parser("check", help="feasibility + legality audit")
    c.add_argument("instance")
    c.add_argument("--dir", default=".")
    c.add_argument("--density", type=float, default=0.97)
    c.add_argument(
        "--relax-infeasible",
        action="store_true",
        help="also report the smallest capacity relaxation that "
        "restores feasibility",
    )
    c.set_defaults(func=cmd_check)

    s = sub.add_parser("score", help="HPWL and density scoring")
    s.add_argument("instance")
    s.add_argument("--dir", default=".")
    s.add_argument("--density", type=float, default=0.97)
    s.set_defaults(func=cmd_score)

    rp = sub.add_parser(
        "replace",
        help="transactional incremental re-place "
        "(ECO deltas; docs/incremental.md)",
    )
    rp.add_argument("instance")
    rp.add_argument("--dir", default=".")
    rp.add_argument("--out", default=None)
    rp.add_argument(
        "--delta-file",
        default=None,
        metavar="JSON",
        help="the delta to apply: a JSON object with any of "
        '"movebounds", "assign", "unassign", "net_weights", '
        '"density_target" — or a bare movebound-patch list (the '
        "service replace wire format); omitted = committed no-op",
    )
    rp.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="durable delta journal (<DIR>/eco): the commit point is "
        "an atomic checksummed journal entry, so a SIGKILL at any "
        "instant recovers to the pre- or post-delta placement "
        "bit-identically; re-running the same delta replays its "
        "committed entry instead of re-solving",
    )
    rp.add_argument(
        "--eco-verify",
        action="store_true",
        help="force the obs invariant registry on during the "
        "incremental solve (containment/legality/HPWL-drift "
        "verification runs regardless)",
    )
    rp.add_argument(
        "--max-hpwl-drift",
        type=float,
        default=4.0,
        metavar="FACTOR",
        help="verification gate: post-delta HPWL above FACTOR x "
        "pre-delta HPWL degrades to the full re-solve",
    )
    rp.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail (exit 4) instead of degrading to the full "
        "multilevel solve when the incremental result is rejected",
    )
    rp.set_defaults(func=cmd_replace)

    # ---- service mode (docs/service.md) ------------------------------
    sv = sub.add_parser(
        "serve", help="run the placement-service job daemon"
    )
    sv.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help="durable service state: job table, per-job run dirs; a "
        "restarted daemon recovers every accepted job from here",
    )
    sv.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="Unix socket to listen on (default <state-dir>/service.sock)",
    )
    sv.add_argument(
        "--tcp",
        type=int,
        default=None,
        metavar="PORT",
        help="listen on localhost TCP instead of a Unix socket "
        "(0 = pick a free port, printed in the readiness line)",
    )
    sv.add_argument("--max-running", type=int, default=2, metavar="N",
                    help="concurrent running jobs (all tenants)")
    sv.add_argument("--max-queue", type=int, default=64, metavar="N",
                    help="bound of the global queue; beyond it jobs are "
                    "shed (lowest priority, oldest first) or refused "
                    "with ServiceOverloadError (exit 5)")
    sv.add_argument("--tenant-max-running", type=int, default=2, metavar="N")
    sv.add_argument("--tenant-max-queued", type=int, default=32, metavar="N")
    sv.add_argument(
        "--tenant-quota",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock quota per tenant; remaining quota also caps "
        "each job's solver budget (graceful ns→ssp→heur degradation)",
    )
    sv.add_argument("--job-timeout", type=float, default=300.0,
                    metavar="SECONDS",
                    help="per-attempt deadline; a child past it is "
                    "killed and the job retried with backoff")
    sv.add_argument("--max-attempts", type=int, default=3, metavar="N",
                    help="child attempts before the in-daemon fallback")
    sv.add_argument("--backoff-base", type=float, default=0.25,
                    metavar="SECONDS")
    sv.add_argument("--backoff-cap", type=float, default=5.0,
                    metavar="SECONDS")
    sv.add_argument("--respawn-window", type=float, default=10.0,
                    metavar="SECONDS")
    sv.add_argument("--respawn-cap", type=int, default=50, metavar="N",
                    help="max child spawns per respawn window "
                    "(crash-loop fork protection)")
    sv.set_defaults(func=cmd_serve)

    def _client_args(p):
        p.add_argument(
            "--socket",
            default=None,
            metavar="PATH",
            help="daemon Unix socket (or env REPRO_SERVICE_SOCKET)",
        )
        p.add_argument("--tcp", type=int, default=None, metavar="PORT",
                       help="daemon localhost TCP port")

    sb = sub.add_parser("submit", help="submit a job to the service")
    sb.add_argument("instance")
    sb.add_argument("--dir", default=".")
    sb.add_argument("--kind", default="place",
                    choices=["place", "check", "replace"])
    sb.add_argument("--tenant", default="default")
    sb.add_argument("--priority", type=int, default=0)
    sb.add_argument("--relax-infeasible", action="store_true")
    sb.add_argument("--transport-method", default=None,
                    choices=["auto", "lp", "ns", "mcf"])
    sb.add_argument("--no-legalize", action="store_true")
    sb.add_argument("--density", type=float, default=None)
    sb.add_argument(
        "--movebound-patch",
        default=None,
        metavar="JSON",
        help="replace jobs: JSON list of "
        '{"name", "rects": [[x_lo,y_lo,x_hi,y_hi],...], "cells": [...]}',
    )
    sb.add_argument(
        "--no-eco",
        action="store_true",
        help="replace jobs: bypass the transactional ECO engine and "
        "run a full re-place with the patch applied (legacy path)",
    )
    sb.add_argument(
        "--eco-verify",
        action="store_true",
        help="replace jobs: invariant checks on during the "
        "incremental solve",
    )
    _client_args(sb)
    sb.set_defaults(func=cmd_submit)

    st = sub.add_parser("status", help="one job's lifecycle state")
    st.add_argument("job_id")
    _client_args(st)
    st.set_defaults(func=cmd_status)

    r = sub.add_parser(
        "result",
        help="a job's result; exits with the job's mapped code on "
        "failure (overload/cancelled = 5)",
    )
    r.add_argument("job_id")
    r.add_argument("--wait", action="store_true",
                   help="block until the job is terminal")
    r.add_argument("--timeout", type=float, default=None, metavar="SECONDS")
    _client_args(r)
    r.set_defaults(func=cmd_result)

    cn = sub.add_parser("cancel", help="cancel a queued or running job")
    cn.add_argument("job_id")
    _client_args(cn)
    cn.set_defaults(func=cmd_cancel)

    args = parser.parse_args(argv)
    if args.check_invariants:
        set_invariants_enabled(True)
    if args.max_solver_iters is not None or args.solver_timeout is not None:
        set_default_budget(
            SolverBudget(
                max_iters=args.max_solver_iters,
                max_seconds=args.solver_timeout,
            )
        )
    if args.fault_plan is not None:
        install_fault_plan(args.fault_plan)
    if args.flow_backend is not None:
        from repro.flows import set_flow_backend

        set_flow_backend(args.flow_backend)
    try:
        rc = args.func(args)
    except ReproError as exc:
        # structured failure: one diagnostic line + the mapped exit
        # code (2 infeasible / 3 budget / 4 internal / 5 service), no
        # traceback
        print(f"error: {exc.diagnosis()}", file=sys.stderr)
        rc = exc.exit_code
    finally:
        if args.trace:
            print(get_tracer().report_ascii(), file=sys.stderr)
        if args.trace_json:
            write_stats_json(args.trace_json)
            print(f"trace written to {args.trace_json}", file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main())
