"""Static timing analysis with a linear wire-delay model.

Conventions (documented, deliberately simple):

* the **first pin** of every net is its driver, the rest are sinks —
  the direction convention of the Bookshelf-era academic flows;
* **net delay** = current HPWL of the net (linear wire delay, unit
  resistance-capacitance per unit length);
* **cell delay** = 1.0 from any input to any output of a cell;
* **primary inputs** = fixed terminals that drive a net, and fixed
  cells' outputs; **primary outputs** = fixed terminals being driven
  and fixed cells' inputs;
* combinational cycles (possible in synthetic netlists) are broken at
  the DFS back edges; the dropped arcs are reported.

Arrival times propagate longest-path over the resulting DAG.  The
criticality of a net is the fraction of the worst path that passes
through it; :func:`reweight_nets` turns criticalities into net weights
for the quadratic placer — the classic timing-driven placement loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.movebounds import MoveBoundSet
from repro.netlist import Net, Netlist

CELL_DELAY = 1.0


@dataclass
class TimingReport:
    """Result of one STA pass."""

    #: worst arrival time at any endpoint (the critical path length)
    critical_path: float
    #: per-net criticality in [0, 1]
    net_criticality: Dict[int, float]
    #: arrival time at each cell's output
    arrival: np.ndarray
    #: arcs dropped to break combinational cycles
    broken_arcs: int = 0

    def critical_nets(self, threshold: float = 0.9) -> List[int]:
        return [
            n for n, c in self.net_criticality.items() if c >= threshold
        ]


def _build_dag(netlist: Netlist) -> Tuple[List[List[Tuple[int, int]]], int]:
    """Successor lists: for each cell, (net index, sink cell) arcs,
    with DFS cycle-breaking.  Returns (successors, broken_arc_count)."""
    n = netlist.num_cells
    successors: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for nidx, net in enumerate(netlist.nets):
        if net.degree < 2:
            continue
        driver = net.pins[0]
        if driver.cell_index < 0:
            continue  # terminal-driven: handled as primary input later
        if netlist.cells[driver.cell_index].fixed:
            continue
        for pin in net.pins[1:]:
            if pin.cell_index >= 0 and pin.cell_index != driver.cell_index:
                successors[driver.cell_index].append(
                    (nidx, pin.cell_index)
                )

    # iterative DFS three-color cycle breaking
    color = np.zeros(n, dtype=np.int8)  # 0 white, 1 gray, 2 black
    broken = 0
    for root in range(n):
        if color[root] != 0:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            node, idx = stack[-1]
            if idx < len(successors[node]):
                stack[-1] = (node, idx + 1)
                _nidx, succ = successors[node][idx]
                if color[succ] == 1:  # back edge: break it
                    successors[node][idx] = (-1, succ)
                    broken += 1
                elif color[succ] == 0:
                    color[succ] = 1
                    stack.append((succ, 0))
            else:
                color[node] = 2
                stack.pop()
    for node in range(n):
        successors[node] = [
            (nidx, succ) for nidx, succ in successors[node] if nidx >= 0
        ]
    return successors, broken


def analyze_timing(netlist: Netlist) -> TimingReport:
    """Longest-path arrival times and per-net criticalities."""
    n = netlist.num_cells
    successors, broken = _build_dag(netlist)

    # net delays from the current placement
    net_delay = np.zeros(netlist.num_nets)
    for nidx, net in enumerate(netlist.nets):
        if net.degree >= 2:
            box = netlist.net_bbox(net)
            net_delay[nidx] = box.width + box.height

    # topological order (DAG after breaking)
    indeg = np.zeros(n, dtype=np.int64)
    for node in range(n):
        for _nidx, succ in successors[node]:
            indeg[succ] += 1
    order: List[int] = [i for i in range(n) if indeg[i] == 0]
    head = 0
    while head < len(order):
        node = order[head]
        head += 1
        for _nidx, succ in successors[node]:
            indeg[succ] -= 1
            if indeg[succ] == 0:
                order.append(succ)

    # primary-input launch: terminal- or fixed-driven nets set arrivals
    arrival = np.zeros(n)
    for net in netlist.nets:
        if net.degree < 2:
            continue
        driver = net.pins[0]
        is_pi = driver.is_fixed_terminal or (
            driver.cell_index >= 0
            and netlist.cells[driver.cell_index].fixed
        )
        if not is_pi:
            continue
        box = netlist.net_bbox(net)
        delay = box.width + box.height
        for pin in net.pins[1:]:
            if pin.cell_index >= 0:
                arrival[pin.cell_index] = max(
                    arrival[pin.cell_index], delay
                )

    # forward propagation in topological order
    for node in order:
        for nidx, succ in successors[node]:
            cand = arrival[node] + CELL_DELAY + net_delay[nidx]
            if cand > arrival[succ]:
                arrival[succ] = cand

    critical_path = float(arrival.max(initial=0.0))

    # backward pass: required times -> per-net criticality
    required = np.full(n, critical_path)
    for node in reversed(order):
        for nidx, succ in successors[node]:
            cand = required[succ] - CELL_DELAY - net_delay[nidx]
            if cand < required[node]:
                required[node] = cand
    net_criticality: Dict[int, float] = {}
    if critical_path > 0:
        for node in range(n):
            for nidx, succ in successors[node]:
                path_slack = required[succ] - (
                    arrival[node] + CELL_DELAY + net_delay[nidx]
                )
                crit = max(0.0, 1.0 - path_slack / critical_path)
                if crit > net_criticality.get(nidx, 0.0):
                    net_criticality[nidx] = min(crit, 1.0)
    return TimingReport(critical_path, net_criticality, arrival, broken)


def reweight_nets(
    netlist: Netlist,
    report: TimingReport,
    alpha: float = 3.0,
    exponent: float = 2.0,
    base_weights: Optional[Sequence[float]] = None,
) -> None:
    """Set net weights to ``base * (1 + alpha * criticality^exponent)``.

    ``base_weights`` preserves the original weights across iterations
    (pass the same array every round to avoid compounding).
    """
    if base_weights is None:
        base_weights = [net.weight for net in netlist.nets]
    for nidx, net in enumerate(netlist.nets):
        crit = report.net_criticality.get(nidx, 0.0)
        net.weight = base_weights[nidx] * (
            1.0 + alpha * crit**exponent
        )
    netlist._hpwl_cache = None  # weights feed the cached arrays


def timing_driven_place(
    netlist: Netlist,
    bounds: Optional[MoveBoundSet] = None,
    iterations: int = 3,
    alpha: float = 3.0,
    placer_factory=None,
) -> Tuple[TimingReport, TimingReport]:
    """The classic timing-driven loop: place, analyze, reweight, repeat.

    Returns ``(first_report, final_report)`` so callers can quote the
    critical-path improvement.  Net weights are restored to their
    originals afterwards (placement positions keep the benefit).
    """
    from repro.place import BonnPlaceFBP

    if placer_factory is None:
        placer_factory = BonnPlaceFBP
    if bounds is None:
        bounds = MoveBoundSet(netlist.die)
    base_weights = [net.weight for net in netlist.nets]

    placer_factory().place(netlist, bounds)
    first = analyze_timing(netlist)
    report = first
    best_report = first
    best_snapshot = netlist.snapshot()
    for _ in range(iterations):
        reweight_nets(netlist, report, alpha, base_weights=base_weights)
        placer_factory().place(netlist, bounds)
        report = analyze_timing(netlist)
        if report.critical_path < best_report.critical_path:
            best_report = report
            best_snapshot = netlist.snapshot()
    # keep the best placement seen; restore original weights so the
    # caller's evaluation is not skewed
    netlist.restore(best_snapshot)
    for net, w in zip(netlist.nets, base_weights):
        net.weight = w
    netlist._hpwl_cache = None
    return first, best_report
