"""Timing analysis and timing-driven net weighting.

Paper §I motivates position constraints with "tight timing and wiring
constraints"; industrial BonnPlace runs inside a timing-driven loop.
This package provides that loop at reproduction scale:

* a linear-delay static timing analysis over the netlist (net delay
  proportional to its wirelength estimate, unit cell delay),
* per-net criticality extraction,
* criticality-based net re-weighting, and
* :func:`timing_driven_place` — the classic place / analyze / reweight
  iteration, which shortens the critical path at a small total-HPWL
  cost.

The delay model is deliberately simple (documented in
:mod:`repro.timing.sta`); the point is the *loop structure* and that
the placer's weighted-HPWL objective supports it unchanged.
"""

from repro.timing.sta import (
    TimingReport,
    analyze_timing,
    reweight_nets,
    timing_driven_place,
)

__all__ = [
    "TimingReport",
    "analyze_timing",
    "reweight_nets",
    "timing_driven_place",
]
