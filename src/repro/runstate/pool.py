"""Supervised parallel window-solver pool (paper §IV.B, BonnPlace).

The per-window transportation solves of the partitioning step are
naturally independent — BonnPlace exploits exactly this for its
parallel speedups.  This pool executes batches of such solves across
``multiprocessing`` workers under *supervision*:

* each worker heartbeats by messaging task start / completion; the
  supervisor additionally polls process liveness every tick,
* every task carries a deadline (budget-aware: derived from the
  process-wide :class:`~repro.resilience.budget.SolverBudget` wall
  limit when one is set),
* a crashed worker (nonzero exit, e.g. an injected ``worker.kill``
  fault or a real OOM kill) or a stalled worker (deadline exceeded,
  e.g. ``worker.stall``) is killed and replaced, and its in-flight
  task is requeued,
* a task that fails ``max_failures`` times is solved *serially in the
  supervisor process* — the pool degrades to correct-but-slow, it
  never loses a window.

Determinism: workers execute
:func:`~repro.flows.transportation.solve_transportation_with_relaxation`
(or, under ``--flow-backend=batched``,
:func:`~repro.flows.batch.solve_transportation_batched` over a whole
shape bucket), pure functions of the task arrays, and the supervisor
merges results by task index.  Scheduling order, worker count,
crashes, and requeues therefore cannot change the output — pool size
1, pool size 8, a crashing pool, and the plain serial path are
bit-identical.

Unit of dispatch: normally one window per unit; under the batched
flow backend every unit is one *shape bucket* (the task indices
:func:`~repro.flows.batch.bucket_task_indices` groups together), so a
worker amortizes the per-instance constant across its whole bucket.
A mid-bucket crash requeues the *entire* bucket — the bucket is
re-solved from scratch by the replacement worker (or serially in the
supervisor after ``max_failures``), so partial progress can never
leak into the merged results and the output stays deterministic.

Fault-injection sites (fire *inside* the worker process; plans are
inherited across ``fork``):

* ``worker.kill``  — ``kill`` rules hard-exit the worker at task start,
* ``worker.stall`` — ``stall:SECONDS`` rules wedge the worker at task
  start.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.flows.transportation import (
    RELAX_CHAIN_WINDOW,
    TransportResult,
    solve_transportation_with_relaxation,
)
from repro.obs import incr, span
from repro.resilience.budget import get_default_budget
from repro.resilience.faultinject import inject

__all__ = [
    "TransportTask",
    "WindowSolverPool",
    "get_active_pool",
    "activated",
    "solve_transport_batch",
    "solve_realize_batch",
]

#: (supplies, capacities, costs) of one window's transportation problem
TransportTask = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: how often the supervisor wakes to check liveness/deadlines (seconds)
_TICK = 0.05

#: grace period stacked on a budget-derived deadline: the in-worker
#: budget clock should fire first, the pool deadline is the backstop
_BUDGET_GRACE = 2.0

_DEFAULT_TASK_TIMEOUT = 60.0

#: minimum batch work (cost-matrix elements) below which routing a
#: batch through an active pool is pure IPC overhead: the batch is
#: solved in-process instead (``pool.serial_shortcircuits``).  The
#: threshold is deterministic — it depends only on the batch shapes —
#: so it cannot affect output bits, only where they are computed.
_POOL_MIN_WORK = 32768


def _pool_min_work() -> int:
    """The active min-work threshold (``REPRO_POOL_MIN_WORK``
    overrides; 0 disables short-circuiting, for tests that must force
    dispatch)."""
    raw = os.environ.get("REPRO_POOL_MIN_WORK")
    if raw is None:
        return _POOL_MIN_WORK
    try:
        return int(raw)
    except ValueError:
        return _POOL_MIN_WORK


def _solve_transport_unit(unit_tasks, chain, method, batched):
    """Solve one transport dispatch unit — a list of tasks — and
    return the per-task ``(result, stage)`` list in unit order.  Pure
    function of its arguments; shared by workers and the supervisor's
    serial fallback so both produce identical bits."""
    if batched:
        from repro.flows.batch import solve_transportation_batched

        return solve_transportation_batched(
            unit_tasks, chain=chain, method=method
        )
    return [
        solve_transportation_with_relaxation(
            supplies, caps, costs, chain=chain, method=method
        )
        for supplies, caps, costs in unit_tasks
    ]


def _solve_unit(kind: str, payload: tuple):
    """Solve one dispatch unit of either kind; the single pure
    function both workers and the supervisor's serial fallback run, so
    every execution path produces identical bits.

    ``"transport"`` payloads are ``(tasks, chain, method, batched)``;
    ``"realize"`` payloads are ``(specs, chain, method)`` (see
    :func:`repro.fbp.realize_windows.realize_unit`).
    """
    if kind == "realize":
        from repro.fbp.realize_windows import realize_unit

        specs, chain, method = payload
        return realize_unit(specs, chain=chain, method=method)
    return _solve_transport_unit(*payload)


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Worker loop: pull one unit, solve, report, repeat.

    Messages on ``result_q``:
    ``("start", wid, unit_id)`` — heartbeat at unit pickup;
    ``("done", wid, unit_id, results)`` — solved, ``results`` is the
    unit's result (a per-task ``(result, stage)`` list for transport
    units, a :class:`WindowOutcome` list for realize units);
    ``("error", wid, unit_id, repr)`` — solver raised (the supervisor
    treats it as a unit failure, not a worker death).
    """
    while True:
        item = task_q.get()
        if item is None:
            return
        unit_id, kind, payload = item
        result_q.put(("start", worker_id, unit_id))
        try:
            inject("worker.kill")
            inject("worker.stall")
            results = _solve_unit(kind, payload)
            result_q.put(("done", worker_id, unit_id, results))
        except BaseException as exc:  # noqa: BLE001 — must not kill loop
            try:
                result_q.put(("error", worker_id, unit_id, repr(exc)))
            except Exception:
                return


@dataclass
class _WorkerHandle:
    """Supervisor-side view of one worker process."""

    worker_id: int
    process: object
    task_q: object
    #: (unit_id, dispatched item, deadline) while busy, else None
    current: Optional[Tuple[int, tuple, float]] = None


class WindowSolverPool:
    """A fixed-size supervised pool of transportation solvers.

    Parameters
    ----------
    num_workers:
        Worker processes.  0 (or 1 worker being cheaper than IPC for a
        single task) still produces identical results — only wall time
        changes.
    task_timeout:
        Per-task deadline in seconds.  Default: twice the process-wide
        solver budget's wall limit (plus grace) when one is set, else
        60 s.
    max_failures:
        Crashes/stalls/errors a single task may suffer before the
        supervisor solves it serially in-process.
    respawn_backoff_base / respawn_backoff_cap:
        Replacement workers are respawned under exponential backoff:
        after ``n`` consecutive worker deaths/stalls the next spawn
        waits ``min(cap, base * 2^(n-1))`` seconds.  A completed unit
        resets the streak.  This keeps a crash-looping fault (every
        pickup dies) from fork-spinning the host while it burns down
        to the serial fallback; the added wall time is bounded by
        ``cap`` per death and changes no output bits.
    """

    def __init__(
        self,
        num_workers: int,
        task_timeout: Optional[float] = None,
        max_failures: int = 2,
        respawn_backoff_base: float = 0.05,
        respawn_backoff_cap: float = 1.0,
    ) -> None:
        import multiprocessing as mp

        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        methods = mp.get_all_start_methods()
        # fork inherits installed fault plans and solver budgets, which
        # keeps worker behavior identical to the serial path; fall back
        # to the platform default elsewhere
        self._ctx = mp.get_context("fork" if "fork" in methods else None)
        self.num_workers = num_workers
        self.max_failures = max_failures
        self.respawn_backoff_base = respawn_backoff_base
        self.respawn_backoff_cap = respawn_backoff_cap
        self._explicit_timeout = task_timeout
        self._result_q = self._ctx.Queue()
        self._workers: Dict[int, _WorkerHandle] = {}
        self._next_worker_id = 0
        self._closed = False
        #: consecutive worker deaths/stalls with no completed unit
        self._loss_streak = 0
        #: monotonic time before which no replacement may spawn
        self._next_respawn = 0.0

    # -- lifecycle ------------------------------------------------------
    def _spawn_worker(self) -> _WorkerHandle:
        wid = self._next_worker_id
        self._next_worker_id += 1
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, task_q, self._result_q),
            daemon=True,
            name=f"repro-window-solver-{wid}",
        )
        proc.start()
        handle = _WorkerHandle(wid, proc, task_q)
        self._workers[wid] = handle
        incr("pool.workers_spawned")
        return handle

    def _ensure_workers(self) -> None:
        if len(self._workers) >= self.num_workers:
            return
        if time.monotonic() < self._next_respawn:
            # crash-loop protection: respawn under backoff, not at the
            # supervision tick rate
            return
        while len(self._workers) < self.num_workers:
            self._spawn_worker()

    def _note_worker_loss(self) -> None:
        """Arm the respawn backoff after a death/stall: the next
        replacement waits min(cap, base * 2^(streak-1)) seconds."""
        self._loss_streak += 1
        delay = min(
            self.respawn_backoff_cap,
            self.respawn_backoff_base * (2.0 ** (self._loss_streak - 1)),
        )
        self._next_respawn = max(
            self._next_respawn, time.monotonic() + delay
        )
        incr("pool.respawn_backoff")

    def _retire_worker(self, handle: _WorkerHandle) -> None:
        self._workers.pop(handle.worker_id, None)
        proc = handle.process
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)
        try:
            handle.task_q.close()
        except Exception:
            pass

    def close(self) -> None:
        """Shut the pool down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for handle in list(self._workers.values()):
            try:
                handle.task_q.put(None)
            except Exception:
                pass
        deadline = time.monotonic() + 2.0
        for handle in list(self._workers.values()):
            handle.process.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
        self._workers.clear()

    def __enter__(self) -> "WindowSolverPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- supervision ----------------------------------------------------
    @property
    def task_timeout(self) -> float:
        if self._explicit_timeout is not None:
            return self._explicit_timeout
        budget = get_default_budget()
        if budget.max_seconds is not None:
            return 2.0 * budget.max_seconds + _BUDGET_GRACE
        return _DEFAULT_TASK_TIMEOUT

    def solve_batch(
        self,
        tasks: Sequence[TransportTask],
        chain: Tuple[Tuple[float, float], ...] = RELAX_CHAIN_WINDOW,
        method: str = "auto",
    ) -> List[Tuple[TransportResult, int]]:
        """Solve every task; returns results in task order.

        Crashed/stalled workers are replaced and their units requeued
        whole; units failing ``max_failures`` times are solved
        in-process.  The returned list is index-aligned with ``tasks``
        regardless of completion order, unit shape, or schedule.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        n = len(tasks)
        if n == 0:
            return []
        with span("pool.solve_batch"):
            out = self._solve_batch(tasks, chain, method)
        incr("pool.tasks", n)
        return out

    def solve_realize_units(
        self,
        units: Sequence[Sequence],
        chain: Tuple[Tuple[float, float], ...] = RELAX_CHAIN_WINDOW,
        method: str = "auto",
    ) -> List[list]:
        """Realize spec units (see
        :func:`repro.fbp.realize_windows.realize_unit`); returns one
        :class:`WindowOutcome` list per unit, in unit order.  Same
        supervision, requeue, and serial-fallback machinery as
        :meth:`solve_batch`."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if not units:
            return []
        payloads = [(list(u), chain, method) for u in units]
        with span("pool.realize_batch"):
            out = self._run_units("realize", payloads)
        incr("pool.realize_units", len(units))
        return out

    def _solve_batch(self, tasks, chain, method):
        from repro.flows.batch import (
            batched_backend_active,
            bucket_task_indices,
        )

        batched = batched_backend_active(method)
        if batched:
            # unit = one shape bucket; crash/stall requeues it whole
            units = bucket_task_indices(tasks)
            incr("pool.bucket_units", len(units))
        else:
            units = [[i] for i in range(len(tasks))]
        payloads = [
            ([tasks[i] for i in idxs], chain, method, batched)
            for idxs in units
        ]
        unit_results = self._run_units("transport", payloads)

        # merge unit results back to task order
        out: List[Optional[Tuple[TransportResult, int]]] = [None] * len(tasks)
        for u, idxs in enumerate(units):
            res = unit_results[u]
            for j, i in enumerate(idxs):
                out[i] = res[j]
        return out

    def _run_units(self, kind: str, payloads: Sequence[tuple]) -> List:
        """Run every ``(kind, payload)`` unit under supervision and
        return their results in unit order.  Crashed/stalled workers
        are replaced and their units requeued whole; units failing
        ``max_failures`` times are solved in-process."""
        self._ensure_workers()
        items = [(u, kind, payloads[u]) for u in range(len(payloads))]
        pending: List[tuple] = list(items)
        failures = [0] * len(items)
        unit_results: Dict[int, object] = {}

        def fail_unit(unit_id: int) -> None:
            failures[unit_id] += 1
            if failures[unit_id] >= self.max_failures:
                # terminal: solve the whole unit serially right here —
                # correctness over speed, and bit-identical by
                # construction (same pure function the worker runs)
                incr("pool.serial_fallbacks")
                unit_results[unit_id] = _solve_unit(
                    kind, payloads[unit_id]
                )
            else:
                incr("pool.requeues")
                pending.append(items[unit_id])

        while len(unit_results) < len(items):
            # dispatch to idle workers, lowest unit id first for a
            # stable (though irrelevant to output) schedule
            pending.sort(key=lambda item: item[0])
            idle = [
                h for h in self._workers.values() if h.current is None
            ]
            for handle in idle:
                if not pending:
                    break
                item = pending.pop(0)
                if item[0] in unit_results:  # already serially resolved
                    continue
                handle.current = (
                    item[0],
                    item,
                    time.monotonic() + self.task_timeout,
                )
                handle.task_q.put(item)

            # drain heartbeats/results for one tick
            try:
                msg = self._result_q.get(timeout=_TICK)
            except queue_mod.Empty:
                msg = None
            while msg is not None:
                kind, wid, unit_id = msg[0], msg[1], msg[2]
                handle = self._workers.get(wid)
                if kind == "done":
                    self._loss_streak = 0  # healthy: disarm backoff
                    if unit_id not in unit_results:
                        unit_results[unit_id] = msg[3]
                    if handle is not None and handle.current is not None \
                            and handle.current[0] == unit_id:
                        handle.current = None
                elif kind == "error":
                    if handle is not None and handle.current is not None \
                            and handle.current[0] == unit_id:
                        handle.current = None
                    incr("pool.task_errors")
                    if unit_id not in unit_results:
                        fail_unit(unit_id)
                # "start" heartbeats need no action: dispatch already
                # armed the deadline
                try:
                    msg = self._result_q.get_nowait()
                except queue_mod.Empty:
                    msg = None

            # supervise: dead or overdue workers lose their unit
            now = time.monotonic()
            for handle in list(self._workers.values()):
                busy = handle.current
                alive = handle.process.is_alive()
                if busy is None:
                    if not alive:
                        self._note_worker_loss()
                        self._retire_worker(handle)
                    continue
                unit_id, _item, deadline = busy
                if not alive:
                    incr("pool.worker_deaths")
                    self._note_worker_loss()
                    self._retire_worker(handle)
                    if unit_id not in unit_results:
                        fail_unit(unit_id)
                elif now > deadline:
                    incr("pool.worker_stalls")
                    self._note_worker_loss()
                    self._retire_worker(handle)
                    if unit_id not in unit_results:
                        fail_unit(unit_id)
            self._ensure_workers()

        return [unit_results[u] for u in range(len(items))]


# ----------------------------------------------------------------------
# process-wide active pool
# ----------------------------------------------------------------------
_active_pool: Optional[WindowSolverPool] = None


def get_active_pool() -> Optional[WindowSolverPool]:
    """The pool the partitioning call sites should route through, if
    any (None = solve serially, the default)."""
    return _active_pool


@contextmanager
def activated(pool: Optional[WindowSolverPool]):
    """Make ``pool`` the active pool for the duration of the block."""
    global _active_pool
    previous = _active_pool
    _active_pool = pool
    try:
        yield pool
    finally:
        _active_pool = previous


def solve_transport_batch(
    tasks: Sequence[TransportTask],
    chain: Tuple[Tuple[float, float], ...] = RELAX_CHAIN_WINDOW,
    method: str = "auto",
) -> List[Tuple[TransportResult, int]]:
    """Solve a batch of window transportation problems through the
    active pool when one is installed (and the batch is worth the IPC),
    else serially.  Output is identical either way.

    Under ``--flow-backend=batched`` the serial path routes the whole
    batch through
    :func:`~repro.flows.batch.solve_transportation_batched` (shape
    buckets solved as one stacked lockstep simplex) and the pooled
    path dispatches whole buckets to workers — all four combinations
    of {serial, pooled} x {array, batched} produce identical bits."""
    from repro.flows.batch import (
        batched_backend_active,
        solve_transportation_batched,
    )

    pool = get_active_pool()
    if pool is not None and len(tasks) > 1:
        work = sum(int(costs.size) for _s, _c, costs in tasks)
        if work < _pool_min_work():
            # below the min-work threshold the IPC round-trip costs
            # more than the solves; the in-process path is identical
            incr("pool.serial_shortcircuits")
        else:
            return pool.solve_batch(tasks, chain=chain, method=method)
    if batched_backend_active(method) and len(tasks) > 1:
        return solve_transportation_batched(
            tasks, chain=chain, method=method
        )
    return [
        solve_transportation_with_relaxation(
            supplies, caps, costs, chain=chain, method=method
        )
        for supplies, caps, costs in tasks
    ]


def solve_realize_batch(
    specs: Sequence,
    grid,
    chain: Tuple[Tuple[float, float], ...] = RELAX_CHAIN_WINDOW,
    method: str = "auto",
    tiles: Optional[int] = None,
) -> List:
    """Realize a batch of window specs — tile-parallel through the
    active pool when one is installed (and the batch is worth the
    IPC), serially in-process otherwise.  Outcomes come back sorted by
    window index, so the result is bit-identical across pool sizes and
    tilings.

    ``tiles``: windows are grouped into ``tiles x tiles`` spatial
    dispatch units (the same decomposition
    :func:`repro.fbp.sharding.tile_of_windows` gives the sharded flow
    solve); ``None`` picks ``min(8, nx, ny)``, ``0``/``1`` force the
    serial path.  The min-work threshold counts only non-trivial
    windows — closed-form windows never justify a worker round-trip.
    """
    from repro.fbp.realize_windows import realize_unit, tile_units

    if not specs:
        return []
    pool = get_active_pool()
    if pool is not None and len(specs) > 1:
        n_tiles = tiles if tiles is not None else min(8, grid.nx, grid.ny)
        if n_tiles > 1:
            work = sum(
                len(s.cells) * len(s.caps)
                for s in specs
                if not s.trivial
            )
            if work < _pool_min_work():
                incr("pool.serial_shortcircuits")
            else:
                units = tile_units(specs, grid, n_tiles)
                if len(units) > 1:
                    incr("realize.pool_dispatched", len(units))
                    results = pool.solve_realize_units(
                        units, chain=chain, method=method
                    )
                    merged = [oc for unit in results for oc in unit]
                    merged.sort(key=lambda oc: oc.widx)
                    return merged
    return realize_unit(specs, chain=chain, method=method)
