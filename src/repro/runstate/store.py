"""Durable, crash-safe run state for the multilevel placer.

The PR-2 :class:`~repro.resilience.checkpoint.ScheduleCheckpointer` is
in-memory: it survives a transient *level* failure, not process death.
This module persists each completed level's placement snapshot to a
*run directory* so that a killed run (SIGKILL, OOM, machine fault) can
be resumed from the last durable level and reproduce the uninterrupted
result bit-for-bit.

Layout of a run directory::

    <run_dir>/
        manifest.json            # versioned run manifest, checksummed
        snapshots/
            level_0000.ckpt      # placement after the initial QP
            level_0001.ckpt      # placement after level 1
            ...
        quarantine/              # corrupt files moved aside, never read

Durability contract — every write is *atomic and fsynced*:

1. encode payload with an embedded SHA-256 checksum,
2. write to ``<name>.tmp.<pid>`` in the same directory,
3. ``flush`` + ``os.fsync`` the file,
4. ``os.replace`` onto the final name (atomic on POSIX),
5. ``os.fsync`` the directory so the rename itself is durable.

A reader therefore sees either the previous complete version or the
new complete version, never a torn write.  Any file whose checksum,
magic, or structure does not verify is *quarantined* (moved into
``quarantine/``) and treated as absent; resume falls back to the next
older durable level instead of crashing.

Snapshot encoding is exact: cell centers are stored as raw
little-endian float64 bytes, so ``encode → decode`` is bit-identical
to :meth:`Netlist.snapshot`/``restore`` for every placement, including
degenerate ones (0 cells, all-fixed, NaN-free guarantees are *not*
assumed).

Fault-injection sites (see :mod:`repro.resilience.faultinject`):

* ``ckpt.write``   — hit before every snapshot write; ``kill`` rules
  here simulate SIGKILL landing mid-checkpoint.
* ``ckpt.corrupt`` — a ``corrupt`` rule makes the writer flip payload
  bytes *after* checksumming, so the next read must detect and
  quarantine the file.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist import Netlist, PlacementSnapshot
from repro.obs import incr, span
from repro.resilience.errors import PipelineStageError
from repro.resilience.faultinject import corruption, inject

__all__ = [
    "SNAPSHOT_MAGIC",
    "MANIFEST_VERSION",
    "CorruptRunStateError",
    "LevelRecord",
    "RunManifest",
    "RunStateStore",
    "atomic_write",
    "config_hash",
    "encode_snapshot",
    "decode_snapshot",
]

SNAPSHOT_MAGIC = "repro-snap-v1"
MANIFEST_VERSION = 1
_FLOAT = "<f8"  # little-endian float64, the netlist's native dtype


class CorruptRunStateError(PipelineStageError):
    """A run-state file failed its checksum / structure verification.

    Raised by the low-level codec; the store catches it, quarantines
    the offending file, and degrades to the next older level — callers
    of the store never see it for snapshot files.
    """


def config_hash(payload: Dict) -> str:
    """Stable hash of a run configuration (options + instance shape).

    Resume refuses to mix checkpoints produced under one configuration
    with a continuation under another — the results would silently
    diverge from the uninterrupted run.
    """
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# snapshot codec
# ----------------------------------------------------------------------
def encode_snapshot(snap: PlacementSnapshot, level: int) -> bytes:
    """Serialize a placement snapshot: one JSON header line + raw
    float64 payload, checksum embedded in the header."""
    x = np.ascontiguousarray(snap.x, dtype=np.float64)
    y = np.ascontiguousarray(snap.y, dtype=np.float64)
    payload = x.astype(_FLOAT, copy=False).tobytes() + y.astype(
        _FLOAT, copy=False
    ).tobytes()
    header = {
        "magic": SNAPSHOT_MAGIC,
        "level": int(level),
        "num_cells": int(len(x)),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    return json.dumps(header, sort_keys=True).encode() + b"\n" + payload


def decode_snapshot(data: bytes) -> Tuple[PlacementSnapshot, int]:
    """Inverse of :func:`encode_snapshot`; verifies magic, structure,
    and checksum.  Raises :class:`CorruptRunStateError` on any
    mismatch."""
    try:
        head_raw, payload = data.split(b"\n", 1)
        header = json.loads(head_raw)
        magic = header["magic"]
        level = int(header["level"])
        n = int(header["num_cells"])
        digest = header["sha256"]
    except (ValueError, KeyError, TypeError) as exc:
        raise CorruptRunStateError(
            f"snapshot header unreadable: {exc}", stage="runstate.decode"
        ) from exc
    if magic != SNAPSHOT_MAGIC:
        raise CorruptRunStateError(
            f"snapshot magic {magic!r} != {SNAPSHOT_MAGIC!r}",
            stage="runstate.decode",
        )
    if len(payload) != 2 * 8 * n:
        raise CorruptRunStateError(
            f"snapshot payload is {len(payload)} bytes, "
            f"expected {2 * 8 * n} for {n} cells",
            stage="runstate.decode",
        )
    if hashlib.sha256(payload).hexdigest() != digest:
        raise CorruptRunStateError(
            "snapshot checksum mismatch", stage="runstate.decode"
        )
    x = np.frombuffer(payload[: 8 * n], dtype=_FLOAT).astype(np.float64)
    y = np.frombuffer(payload[8 * n :], dtype=_FLOAT).astype(np.float64)
    return PlacementSnapshot(x, y), level


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
@dataclass
class LevelRecord:
    """One durable level in the manifest."""

    level: int
    file: str
    sha256: str
    hpwl: float
    num_cells: int

    def to_dict(self) -> Dict:
        return {
            "level": self.level,
            "file": self.file,
            "sha256": self.sha256,
            "hpwl": self.hpwl,
            "num_cells": self.num_cells,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "LevelRecord":
        return cls(
            level=int(d["level"]),
            file=str(d["file"]),
            sha256=str(d["sha256"]),
            hpwl=float(d["hpwl"]),
            num_cells=int(d["num_cells"]),
        )


@dataclass
class RunManifest:
    """The versioned description of one placement run."""

    instance: str
    config_hash: str
    levels: int
    seed: Optional[int] = None
    version: int = MANIFEST_VERSION
    completed: List[LevelRecord] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "version": self.version,
            "instance": self.instance,
            "config_hash": self.config_hash,
            "levels": self.levels,
            "seed": self.seed,
            "completed": [r.to_dict() for r in self.completed],
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "RunManifest":
        m = cls(
            instance=str(d["instance"]),
            config_hash=str(d["config_hash"]),
            levels=int(d["levels"]),
            seed=d.get("seed"),
            version=int(d["version"]),
        )
        m.completed = [LevelRecord.from_dict(r) for r in d["completed"]]
        return m

    @property
    def last_level(self) -> Optional[int]:
        return self.completed[-1].level if self.completed else None


# ----------------------------------------------------------------------
# atomic I/O
# ----------------------------------------------------------------------
def _atomic_write(path: str, data: bytes) -> None:
    """write → flush → fsync → rename → fsync(dir)."""
    directory = os.path.dirname(path) or "."
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        # never leave a stray tmp file behind on ANY failure, then
        # re-raise (a kill-type fault bypasses this by design)
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


#: public name of the durability primitive — the service job store and
#: the ECO delta journal commit through the exact same sequence
atomic_write = _atomic_write


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class RunStateStore:
    """Durable checkpoint store rooted at one run directory."""

    MANIFEST = "manifest.json"
    SNAPSHOT_DIR = "snapshots"
    QUARANTINE_DIR = "quarantine"

    def __init__(self, run_dir: str) -> None:
        self.run_dir = run_dir
        self.manifest: Optional[RunManifest] = None
        os.makedirs(os.path.join(run_dir, self.SNAPSHOT_DIR), exist_ok=True)

    # -- paths ----------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.run_dir, self.MANIFEST)

    def _snapshot_path(self, level: int) -> str:
        return os.path.join(
            self.run_dir, self.SNAPSHOT_DIR, f"level_{level:04d}.ckpt"
        )

    # -- manifest -------------------------------------------------------
    def has_manifest(self) -> bool:
        return os.path.exists(self._manifest_path())

    def begin_run(
        self,
        instance: str,
        cfg_hash: str,
        levels: int,
        seed: Optional[int] = None,
    ) -> RunManifest:
        """Start a fresh run: write an empty manifest (discarding any
        previous run's records in this directory)."""
        self.manifest = RunManifest(
            instance=instance, config_hash=cfg_hash, levels=levels, seed=seed
        )
        self._write_manifest()
        incr("runstate.runs_started")
        return self.manifest

    def load_manifest(self) -> RunManifest:
        """Read and verify the manifest.

        The manifest is the root of trust for the run directory; if it
        does not verify, resume is impossible and the caller gets a
        structured error (exit code 4, not a traceback).
        """
        path = self._manifest_path()
        try:
            with open(path, "rb") as f:
                raw = f.read()
        except OSError as exc:
            # absent: nothing to quarantine, resume is just impossible
            raise PipelineStageError(
                f"run manifest unreadable at {path}: {exc}",
                stage="runstate.manifest",
            ) from exc
        try:
            outer = json.loads(raw)
            body = outer["manifest"]
            digest = outer["sha256"]
        except (ValueError, KeyError, TypeError) as exc:
            # torn or garbled: quarantine before refusing, so the next
            # attempt in this directory starts fresh instead of
            # tripping over the same bad bytes forever
            self._quarantine(path, f"manifest undecodable: {exc}")
            raise PipelineStageError(
                f"run manifest unreadable at {path}: {exc} "
                f"(quarantined)",
                stage="runstate.manifest",
            ) from exc
        canonical = json.dumps(body, sort_keys=True).encode()
        if hashlib.sha256(canonical).hexdigest() != digest:
            self._quarantine(path, "manifest body != embedded sha256")
            raise PipelineStageError(
                f"run manifest checksum mismatch at {path} (quarantined)",
                stage="runstate.manifest",
            )
        if int(body.get("version", -1)) != MANIFEST_VERSION:
            raise PipelineStageError(
                f"run manifest version {body.get('version')!r} unsupported "
                f"(expected {MANIFEST_VERSION})",
                stage="runstate.manifest",
            )
        self.manifest = RunManifest.from_dict(body)
        return self.manifest

    def _write_manifest(self) -> None:
        assert self.manifest is not None
        body = self.manifest.to_dict()
        canonical = json.dumps(body, sort_keys=True).encode()
        outer = {
            "manifest": body,
            "sha256": hashlib.sha256(canonical).hexdigest(),
        }
        with span("runstate.write_manifest"):
            _atomic_write(
                self._manifest_path(),
                json.dumps(outer, sort_keys=True, indent=1).encode(),
            )

    # -- snapshots ------------------------------------------------------
    def save_level(self, level: int, netlist: Netlist) -> LevelRecord:
        """Persist the placement after ``level``: atomic snapshot file
        first, then the manifest record pointing at it.  The manifest
        update is the commit point — a kill between the two leaves an
        unreferenced (harmless) snapshot file."""
        inject("ckpt.write")
        data = encode_snapshot(netlist.snapshot(), level)
        if corruption("ckpt.corrupt"):
            # flip bytes *after* checksumming: simulates media/DMA
            # corruption the reader must catch
            payload_at = data.index(b"\n") + 1
            mid = payload_at + max(0, (len(data) - payload_at) // 2)
            corrupted = bytearray(data)
            for i in range(mid, min(mid + 8, len(corrupted))):
                corrupted[i] ^= 0xFF
            if len(corrupted) == payload_at:  # empty payload: break header
                corrupted[0] ^= 0xFF
            data = bytes(corrupted)
        path = self._snapshot_path(level)
        with span("runstate.write_snapshot"):
            _atomic_write(path, data)
        incr("runstate.snapshots_written")
        incr("runstate.bytes_written", len(data))

        if self.manifest is None:
            raise PipelineStageError(
                "save_level before begin_run/load_manifest",
                stage="runstate.manifest",
            )
        record = LevelRecord(
            level=level,
            file=os.path.join(self.SNAPSHOT_DIR, os.path.basename(path)),
            sha256=hashlib.sha256(data).hexdigest(),
            hpwl=netlist.hpwl(),
            num_cells=netlist.num_cells,
        )
        # idempotent on re-run of a level after resume
        self.manifest.completed = [
            r for r in self.manifest.completed if r.level < level
        ] + [record]
        self._write_manifest()
        return record

    def _quarantine(self, path: str, reason: str) -> None:
        qdir = os.path.join(self.run_dir, self.QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        dest = os.path.join(qdir, os.path.basename(path))
        try:
            os.replace(path, dest)
        except OSError:
            pass  # already gone — absence is what quarantine ensures
        incr("runstate.quarantined")
        # a sidecar note so a human can see why the file was pulled
        try:
            with open(dest + ".reason", "w") as f:
                f.write(reason + "\n")
        except OSError:
            pass

    def load_level(self, record: LevelRecord) -> Optional[PlacementSnapshot]:
        """Load + verify one level's snapshot; quarantine on any
        corruption and return None."""
        path = os.path.join(self.run_dir, record.file)
        try:
            with open(path, "rb") as f:
                data = f.read()
        except OSError as exc:
            incr("runstate.snapshot_missing")
            self._quarantine(path, f"unreadable: {exc}")
            return None
        if hashlib.sha256(data).hexdigest() != record.sha256:
            self._quarantine(path, "file hash != manifest record")
            return None
        try:
            snap, level = decode_snapshot(data)
        except CorruptRunStateError as exc:
            self._quarantine(path, str(exc))
            return None
        if level != record.level or len(snap.x) != record.num_cells:
            self._quarantine(
                path,
                f"snapshot says level={level} n={len(snap.x)}, manifest "
                f"says level={record.level} n={record.num_cells}",
            )
            return None
        return snap

    def latest_valid_level(
        self,
    ) -> Optional[Tuple[LevelRecord, PlacementSnapshot]]:
        """Newest durable level whose snapshot verifies, scanning
        backwards past quarantined files."""
        if self.manifest is None:
            self.load_manifest()
        assert self.manifest is not None
        for record in reversed(self.manifest.completed):
            with span("runstate.load_snapshot"):
                snap = self.load_level(record)
            if snap is not None:
                return record, snap
            # drop the bad record so a subsequent save/commit does not
            # resurrect it
            self.manifest.completed = [
                r
                for r in self.manifest.completed
                if r.level != record.level
            ]
        return None
