"""Crash-safe durable run state + supervised parallel window solving.

Two subsystems that together make long multilevel placements survive
process death and scale across cores:

* :mod:`repro.runstate.store` / :mod:`repro.runstate.state` — a
  durable checkpoint store (atomic write→fsync→rename, per-file
  checksums, corruption quarantine) plus the versioned run manifest
  and the ``--run-dir``/``--resume`` contract: a killed run restarts
  from the last durable level and reproduces the uninterrupted result
  bit-for-bit.
* :mod:`repro.runstate.pool` — a supervised ``multiprocessing`` pool
  for the independent per-window transportation solves of the
  partitioning step; crashed or stalled workers are replaced and
  their windows requeued, with an in-process serial fallback, and
  results merge in deterministic window order.

See docs/resilience.md (run directories, fault sites) and
docs/observability.md (``runstate.*`` / ``pool.*`` counters).
"""

from repro.runstate.pool import (
    WindowSolverPool,
    activated,
    get_active_pool,
    solve_realize_batch,
    solve_transport_batch,
)
from repro.runstate.state import DurableRunState
from repro.runstate.store import (
    CorruptRunStateError,
    LevelRecord,
    RunManifest,
    RunStateStore,
    atomic_write,
    config_hash,
    decode_snapshot,
    encode_snapshot,
)

__all__ = [
    # durable store
    "RunStateStore",
    "RunManifest",
    "LevelRecord",
    "DurableRunState",
    "CorruptRunStateError",
    "atomic_write",
    "config_hash",
    "encode_snapshot",
    "decode_snapshot",
    # worker pool
    "WindowSolverPool",
    "get_active_pool",
    "activated",
    "solve_transport_batch",
    "solve_realize_batch",
]
