"""The placer-facing façade over the durable run-state store.

:class:`DurableRunState` is what ``BonnPlaceFBP`` holds: it owns a
:class:`~repro.runstate.store.RunStateStore`, decides between *fresh*
and *resume* at the start of a run, restores the last durable level's
placement into the netlist on resume, and persists every completed
level.

Resume safety: a manifest is only honored when its instance name and
configuration hash match the current run — continuing a run under a
different configuration would silently diverge from the uninterrupted
result, which is exactly the bug the hash refuses to allow.
"""

from __future__ import annotations

from typing import Optional

from repro.netlist import Netlist
from repro.obs import incr
from repro.resilience.errors import PipelineStageError
from repro.runstate.store import RunStateStore

__all__ = ["DurableRunState"]


class DurableRunState:
    """Durable checkpoint/resume driver for one placement run."""

    def __init__(self, run_dir: str, resume: bool = False) -> None:
        self.store = RunStateStore(run_dir)
        self.resume_requested = resume
        #: the durable level restored at begin() (None = fresh run)
        self.resumed_level: Optional[int] = None

    def begin(
        self,
        netlist: Netlist,
        cfg_hash: str,
        levels: int,
        seed: Optional[int] = None,
    ) -> Optional[int]:
        """Open the run directory for this run.

        With resume requested and a durable, configuration-matching
        manifest present: restore the newest valid level's placement
        into ``netlist`` and return that level (corrupt snapshots are
        quarantined and skipped).  Otherwise start a fresh manifest and
        return None.  A resume request against an *incompatible*
        manifest is a hard error, never a silent restart.
        """
        self.resumed_level = None
        if self.resume_requested and self.store.has_manifest():
            manifest = self.store.load_manifest()
            if (
                manifest.instance != netlist.name
                or manifest.config_hash != cfg_hash
            ):
                raise PipelineStageError(
                    f"cannot resume: run directory holds instance "
                    f"{manifest.instance!r} config {manifest.config_hash}, "
                    f"current run is {netlist.name!r} config {cfg_hash}",
                    stage="runstate.resume",
                    context={"run_dir": self.store.run_dir},
                )
            found = self.store.latest_valid_level()
            if found is not None:
                record, snap = found
                netlist.restore(snap)
                self.resumed_level = record.level
                incr("runstate.resumes")
                return record.level
            # nothing durable survived verification — rerun from scratch
            # under the same manifest (its completed list is now empty)
            incr("runstate.resume_empty")
            return None
        self.store.begin_run(netlist.name, cfg_hash, levels, seed=seed)
        return None

    def save_level(self, level: int, netlist: Netlist) -> None:
        """Persist the placement after ``level`` (atomic + fsynced)."""
        self.store.save_level(level, netlist)
