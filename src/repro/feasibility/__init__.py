"""Feasibility of placement with movebounds (paper §II, Theorems 1-2).

Condition (1) of the paper: for every subset M' of movebounds, the
total size of cells bound to M' must fit into the capacity of the union
of their areas.  Checking all subsets is exponential; the paper reduces
the check to a bipartite MaxFlow between cells (Theorem 1) or
movebound clusters (Theorem 2) and regions.
"""

from repro.feasibility.check import (
    FeasibilityReport,
    check_feasibility,
    check_feasibility_cell_level,
    condition_one_all_subsets,
)

__all__ = [
    "FeasibilityReport",
    "check_feasibility",
    "check_feasibility_cell_level",
    "condition_one_all_subsets",
]
