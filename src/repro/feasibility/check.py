"""MaxFlow feasibility checks for placement with movebounds.

Theorem 1 (cell level): max flow of the bipartite network
``s -> cells -> admissible regions -> t`` equals the total cell size
iff condition (1) holds for every movebound subset.

Theorem 2 (clustered): clustering all cells of one movebound into a
single source node preserves the max-flow value because cell->region
admissibility depends only on the movebound; the clustered network has
O(|M| |R|) arcs and solves in O(|M|^2 |R|) time.

On an infeasible instance, the source side of the min cut yields a
*witness*: a subset M' of movebounds violating condition (1), which the
report carries for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional

from repro.geometry import RectSet
from repro.movebounds import (
    DEFAULT_BOUND,
    MoveBoundSet,
    RegionDecomposition,
    decompose_regions,
)
from repro.netlist import Netlist
from repro.flows import Dinic
from repro.obs import incr, span
from repro.resilience.errors import InfeasibleInputError
from repro.resilience.faultinject import inject


@dataclass
class FeasibilityReport:
    """Outcome of a movebound feasibility check."""

    feasible: bool
    total_cell_area: float
    routed_area: float
    #: On infeasibility: movebound names M' whose cells exceed
    #: capa(union of their areas) — a witness of condition (1) failing.
    witness: Optional[FrozenSet[str]] = None

    @property
    def deficit(self) -> float:
        """Cell area that cannot be accommodated (0 when feasible)."""
        return max(0.0, self.total_cell_area - self.routed_area)


def _cluster_sizes(
    netlist: Netlist, bounds: MoveBoundSet
) -> Dict[str, float]:
    """Total movable-cell area per movebound name (default included)."""
    sizes: Dict[str, float] = {}
    for cell in netlist.cells:
        if cell.fixed:
            continue
        name = cell.movebound if cell.movebound is not None else DEFAULT_BOUND
        sizes[name] = sizes.get(name, 0.0) + cell.size
    return sizes


def check_feasibility(
    netlist: Netlist,
    bounds: MoveBoundSet,
    decomposition: Optional[RegionDecomposition] = None,
    density_target: float = 1.0,
) -> FeasibilityReport:
    """Theorem 2: the clustered polynomial-time feasibility check.

    Decides whether a fractional placement respecting all movebounds
    exists, given region capacities at the requested density target.
    """
    inject("stage.feasibility")
    if decomposition is None:
        decomposition = decompose_regions(
            netlist.die, bounds, netlist.blockages
        )
    sizes = _cluster_sizes(netlist, bounds)
    total = sum(sizes.values())

    dinic = Dinic()
    for name, size in sizes.items():
        dinic.add_edge("s", ("M", name), size)
    for region in decomposition:
        cap = region.capacity(density_target)
        if cap <= 0:
            continue
        dinic.add_edge(("r", region.index), "t", cap)
        for name in sizes:
            if region.admits(name):
                dinic.add_edge(("M", name), ("r", region.index), float("inf"))
    with span("feasibility.maxflow"):
        routed = dinic.max_flow("s", "t")
    incr("feasibility.checks")
    feasible = routed >= total - 1e-6 * max(total, 1.0)
    if not feasible:
        incr("feasibility.infeasible")

    witness: Optional[FrozenSet[str]] = None
    if not feasible:
        reachable = dinic.min_cut_reachable("s")
        witness = frozenset(
            key[1]
            for key in reachable
            if isinstance(key, tuple) and key[0] == "M"
        )
    return FeasibilityReport(feasible, total, routed, witness)


def check_feasibility_cell_level(
    netlist: Netlist,
    bounds: MoveBoundSet,
    decomposition: Optional[RegionDecomposition] = None,
    density_target: float = 1.0,
) -> FeasibilityReport:
    """Theorem 1: the cell-level MaxFlow check (one source arc per
    cell).  Equivalent to :func:`check_feasibility` but larger; kept as
    the reference implementation and test oracle."""
    if decomposition is None:
        decomposition = decompose_regions(
            netlist.die, bounds, netlist.blockages
        )
    total = 0.0
    dinic = Dinic()
    admissible: Dict[str, List[int]] = {}
    for region in decomposition:
        cap = region.capacity(density_target)
        if cap <= 0:
            continue
        dinic.add_edge(("r", region.index), "t", cap)
        for name in list(region.signature):
            admissible.setdefault(name, []).append(region.index)
    for cell in netlist.cells:
        if cell.fixed:
            continue
        name = cell.movebound if cell.movebound is not None else DEFAULT_BOUND
        dinic.add_edge("s", ("c", cell.index), cell.size)
        total += cell.size
        for ridx in admissible.get(name, ()):
            dinic.add_edge(("c", cell.index), ("r", ridx), float("inf"))
    routed = dinic.max_flow("s", "t")
    feasible = routed >= total - 1e-6 * max(total, 1.0)
    return FeasibilityReport(feasible, total, routed)


def condition_one_all_subsets(
    netlist: Netlist,
    bounds: MoveBoundSet,
    density_target: float = 1.0,
    max_bounds: int = 12,
) -> Optional[FrozenSet[str]]:
    """Brute-force condition (1): evaluate every movebound subset.

    Returns a violating subset (the first found, smallest first) or
    None when condition (1) holds everywhere.  Exponential — guarded by
    ``max_bounds`` and intended for tests validating Theorems 1/2.

    The default movebound participates with area = die minus exclusive
    areas, so unconstrained cells are covered by the same condition.
    """
    all_bounds = bounds.all_bounds()
    if len(all_bounds) > max_bounds:
        raise InfeasibleInputError(
            f"{len(all_bounds)} movebounds: subset enumeration too large",
            stage="feasibility.subsets",
        )
    sizes = _cluster_sizes(netlist, bounds)

    for k in range(1, len(all_bounds) + 1):
        for combo in combinations(all_bounds, k):
            demand = sum(sizes.get(b.name, 0.0) for b in combo)
            if demand == 0:
                continue
            union = RectSet()
            for b in combo:
                union = union.union(b.area)
            capacity = union.subtract(netlist.blockages).area * density_target
            if demand > capacity + 1e-6 * max(capacity, 1.0):
                return frozenset(b.name for b in combo)
    return None
