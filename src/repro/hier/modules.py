"""Module trees and hierarchy flattening.

A :class:`Module` is a node of the design hierarchy; leaves hold cell
indices, inner nodes hold submodules.  :func:`flatten_to_movebounds`
turns a chosen hierarchy *cut* into movebounds:

* every module at (or above, if it is a leaf) the cut depth becomes
  one inclusive movebound;
* bound areas come from a slicing floorplan of the die proportional to
  module cell areas (the same proven-feasible layout machinery as the
  workload generator);
* cells of deeper modules inherit their ancestor's bound — exactly
  what "flattening an RLM one level" means.

The result is the (F) structure of the paper's Table III instances,
obtained from an actual hierarchy instead of synthetic clusters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.feasibility import check_feasibility
from repro.geometry import Rect
from repro.movebounds import INCLUSIVE, MoveBoundSet
from repro.netlist import Netlist


@dataclass
class Module:
    """One node of the design hierarchy."""

    name: str
    children: List["Module"] = field(default_factory=list)
    #: cell indices owned directly by this module (usually leaves only)
    cells: List[int] = field(default_factory=list)

    def add_child(self, child: "Module") -> "Module":
        if any(c.name == child.name for c in self.children):
            raise ValueError(f"duplicate child module {child.name!r}")
        self.children.append(child)
        return child

    def all_cells(self) -> List[int]:
        """Cell indices of this module and all descendants."""
        out = list(self.cells)
        for child in self.children:
            out.extend(child.all_cells())
        return out

    def modules_at_depth(self, depth: int) -> List["Module"]:
        """Modules forming the hierarchy cut at the given depth: nodes
        exactly at `depth`, plus shallower leaves."""
        if depth == 0 or not self.children:
            return [self]
        out: List[Module] = []
        for child in self.children:
            out.extend(child.modules_at_depth(depth - 1))
        return out

    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(c.depth() for c in self.children)

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, children={len(self.children)}, "
            f"cells={len(self.cells)})"
        )


@dataclass
class FlattenResult:
    """Outcome of hierarchy flattening."""

    bounds: MoveBoundSet
    #: module name -> cell indices bound to it
    members: Dict[str, List[int]]
    #: modules skipped (too few cells to warrant a bound)
    skipped: List[str] = field(default_factory=list)


def _module_affinity(
    netlist: Netlist, members: Dict[str, List[int]]
) -> Dict[frozenset, float]:
    """Net-weight affinity between module pairs: every net touching
    cells of k >= 2 modules contributes weight/(k-1) per pair."""
    module_of: Dict[int, str] = {}
    for name, cells in members.items():
        for i in cells:
            module_of[i] = name
    affinity: Dict[frozenset, float] = {}
    for net in netlist.nets:
        touched = set()
        for pin in net.pins:
            if pin.cell_index >= 0 and pin.cell_index in module_of:
                touched.add(module_of[pin.cell_index])
        if len(touched) < 2:
            continue
        share = net.weight / (len(touched) - 1)
        ordered = sorted(touched)
        for a_i, a in enumerate(ordered):
            for b in ordered[a_i + 1 :]:
                key = frozenset((a, b))
                affinity[key] = affinity.get(key, 0.0) + share
    return affinity


def _bipartition(
    names: List[str],
    demands: Dict[str, float],
    affinity: Dict[frozenset, float],
) -> tuple:
    """Demand-balanced bipartition that keeps connected modules
    together: greedy seed by demand, then improvement passes moving a
    module across when that lowers the cut and keeps balance."""
    left: List[str] = []
    right: List[str] = []
    d_left = d_right = 0.0
    for name in sorted(names, key=lambda n: -demands[n]):
        if d_left <= d_right:
            left.append(name)
            d_left += demands[name]
        else:
            right.append(name)
            d_right += demands[name]
    total = d_left + d_right

    def cut(l: List[str], r: List[str]) -> float:
        return sum(
            w for key, w in affinity.items()
            if any(n in l for n in key) and any(n in r for n in key)
        )

    for _ in range(4):  # a few improvement sweeps suffice at this size
        improved = False
        for name in list(names):
            if name in left and len(left) > 1:
                src, dst = left, right
            elif name in right and len(right) > 1:
                src, dst = right, left
            else:
                continue
            new_src = [n for n in src if n != name]
            new_dst = dst + [name]
            d_new_dst = sum(demands[n] for n in new_dst)
            if not 0.2 * total <= d_new_dst <= 0.8 * total:
                continue
            if cut(new_src, new_dst) + 1e-12 < cut(src, dst):
                src.remove(name)
                dst.append(name)
                improved = True
        if not improved:
            break
    return left, right


def _slicing_layout(
    die: Rect,
    demands: Dict[str, float],
    netlist: Netlist,
    fill: float,
    affinity: Optional[Dict[frozenset, float]] = None,
) -> Dict[str, Rect]:
    """Slicing floorplan: recursively split the die proportionally to
    the demands (keeping connected modules on the same side when an
    affinity map is given); each module gets a centered, row-aligned
    rectangle of area demand/fill inside its slice."""
    affinity = affinity or {}
    areas: Dict[str, Rect] = {}

    def snap(rect: Rect) -> Rect:
        h = netlist.row_height
        s = netlist.site_width
        x_lo = die.x_lo + math.floor((rect.x_lo - die.x_lo) / s) * s
        x_hi = die.x_lo + math.ceil((rect.x_hi - die.x_lo) / s) * s
        y_lo = die.y_lo + math.floor((rect.y_lo - die.y_lo) / h) * h
        y_hi = die.y_lo + math.ceil((rect.y_hi - die.y_lo) / h) * h
        return Rect(
            max(x_lo, die.x_lo), max(y_lo, die.y_lo),
            min(x_hi, die.x_hi), min(y_hi, die.y_hi),
        )

    def split(rect: Rect, names: List[str]) -> bool:
        if len(names) == 1:
            name = names[0]
            want = demands[name] / fill
            if want > 0.95 * rect.area:
                return False
            scale = math.sqrt(want / rect.area)
            w, h = rect.width * scale, rect.height * scale
            x0 = rect.x_lo + (rect.width - w) / 2
            y0 = rect.y_lo + (rect.height - h) / 2
            areas[name] = snap(Rect(x0, y0, x0 + w, y0 + h))
            return True
        left, right = _bipartition(names, demands, affinity)
        d_left = sum(demands[n] for n in left)
        d_right = sum(demands[n] for n in right)
        frac = min(max(d_left / max(d_left + d_right, 1e-12), 0.15), 0.85)
        if rect.width >= rect.height:
            cut = rect.x_lo + rect.width * frac
            return split(
                Rect(rect.x_lo, rect.y_lo, cut, rect.y_hi), left
            ) and split(Rect(cut, rect.y_lo, rect.x_hi, rect.y_hi), right)
        cut = rect.y_lo + rect.height * frac
        return split(
            Rect(rect.x_lo, rect.y_lo, rect.x_hi, cut), left
        ) and split(Rect(rect.x_lo, cut, rect.x_hi, rect.y_hi), right)

    if not split(die, list(demands)):
        raise ValueError(
            "hierarchy does not fit the die at the requested fill; "
            "lower `fill` or flatten deeper"
        )
    return areas


def flatten_to_movebounds(
    netlist: Netlist,
    root: Module,
    depth: int = 1,
    fill: float = 0.6,
    min_cells: int = 4,
    density_target: float = 0.97,
) -> FlattenResult:
    """Flatten the hierarchy at `depth` into inclusive movebounds.

    Modules with fewer than `min_cells` cells stay unconstrained (their
    cells place freely).  The resulting instance is validated with the
    Theorem-2 feasibility check; an infeasible floorplan raises.
    Mutates ``cell.movebound`` on the netlist.
    """
    if not 0 < fill <= 1:
        raise ValueError("fill must be in (0, 1]")
    modules = root.modules_at_depth(depth)
    members: Dict[str, List[int]] = {}
    skipped: List[str] = []
    demands: Dict[str, float] = {}
    for module in modules:
        cells = [
            i for i in module.all_cells() if not netlist.cells[i].fixed
        ]
        if len(cells) < min_cells:
            skipped.append(module.name)
            continue
        if module.name in members:
            raise ValueError(f"duplicate module name {module.name!r}")
        members[module.name] = cells
        demands[module.name] = sum(
            netlist.cells[i].size for i in cells
        )

    affinity = _module_affinity(netlist, members)
    areas = _slicing_layout(netlist.die, demands, netlist, fill, affinity)
    bounds = MoveBoundSet(netlist.die)
    for name, cells in members.items():
        bounds.add_rects(name, [areas[name]], INCLUSIVE)
        for i in cells:
            netlist.cells[i].movebound = name
    bounds.normalize()

    report = check_feasibility(
        netlist, bounds, density_target=density_target
    )
    if not report.feasible:
        raise ValueError(
            f"flattened floorplan infeasible: subset "
            f"{sorted(report.witness or ())} overflows by "
            f"{report.deficit:.1f}"
        )
    return FlattenResult(bounds, members, skipped)
