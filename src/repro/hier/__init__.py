"""Hierarchy flattening: module trees to movebounds.

Paper §I: movebounds "can also be used as a compromise between flat
and hierarchical design approaches [3]: movebounds allow to reveal the
interior of hierarchical units (SoC, RLMs) but the overall
hierarchical structure can be kept" — the (F) remark of Table III.

This package provides that front-end: a :class:`Module` tree whose
leaves own cells, a floorplanner that assigns each selected module a
rectangular bound sized for its cell area, and the flattening step
that emits the movebound set + cell assignment for the placer.
"""

from repro.hier.modules import (
    FlattenResult,
    Module,
    flatten_to_movebounds,
)

__all__ = ["Module", "FlattenResult", "flatten_to_movebounds"]
