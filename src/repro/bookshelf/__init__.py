"""Bookshelf-style text I/O.

A minimal, self-contained dialect of the academic Bookshelf placement
format so instances round-trip to disk: ``.nodes`` (cells), ``.nets``,
``.pl`` (placement), ``.scl`` (die/rows, reduced to one line here),
plus a ``.mb`` extension file for movebounds — the paper notes
movebounds are part of the OpenAccess standard but absent from the
classic benchmarks, so the extension is ours and documented in the
module docstring of :mod:`repro.bookshelf.io`.
"""

from repro.bookshelf.io import load_instance, save_instance

__all__ = ["save_instance", "load_instance"]
