"""Reading and writing the Bookshelf-style instance files.

Files written for an instance ``name`` into a directory:

``name.aux``
    Index file listing the other files (Bookshelf convention).
``name.nodes``
    ``<cell> <width> <height> [terminal] [movebound=<mb>]`` per line.
``name.nets``
    ``NetDegree : <k> <netname> [weight]`` followed by one pin per
    line: ``<cell> : <dx> <dy>`` (offsets from the cell center) or
    ``PAD : <x> <y>`` for fixed terminals.
``name.pl``
    ``<cell> <x_center> <y_center>`` per line.
``name.scl``
    ``Die <x_lo> <y_lo> <x_hi> <y_hi> RowHeight <h> SiteWidth <w>``
    plus ``Blockage <x_lo> <y_lo> <x_hi> <y_hi>`` lines.
``name.mb``
    One movebound per line:
    ``<name> <inclusive|exclusive> <x_lo> <y_lo> <x_hi> <y_hi> [...]``
    (coordinate quadruples repeat for multi-rectangle areas).
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.geometry import Rect, RectSet
from repro.movebounds import MoveBound, MoveBoundSet
from repro.netlist import Netlist, Pin


def save_instance(
    directory: str,
    netlist: Netlist,
    bounds: Optional[MoveBoundSet] = None,
) -> None:
    """Write the instance to ``directory`` (created if missing)."""
    os.makedirs(directory, exist_ok=True)
    name = netlist.name
    base = os.path.join(directory, name)

    with open(base + ".nodes", "w") as f:
        f.write(f"NumNodes : {netlist.num_cells}\n")
        for cell in netlist.cells:
            extras = ""
            if cell.fixed:
                extras += " terminal"
            if cell.movebound:
                extras += f" movebound={cell.movebound}"
            f.write(f"{cell.name} {cell.width} {cell.height}{extras}\n")

    with open(base + ".nets", "w") as f:
        f.write(f"NumNets : {netlist.num_nets}\n")
        for net in netlist.nets:
            f.write(f"NetDegree : {net.degree} {net.name} {net.weight}\n")
            for pin in net.pins:
                if pin.is_fixed_terminal:
                    f.write(f"  PAD : {pin.offset_x} {pin.offset_y}\n")
                else:
                    cell = netlist.cells[pin.cell_index]
                    f.write(
                        f"  {cell.name} : {pin.offset_x} {pin.offset_y}\n"
                    )

    with open(base + ".pl", "w") as f:
        for cell in netlist.cells:
            f.write(
                f"{cell.name} {netlist.x[cell.index]} "
                f"{netlist.y[cell.index]}\n"
            )

    with open(base + ".scl", "w") as f:
        die = netlist.die
        f.write(
            f"Die {die.x_lo} {die.y_lo} {die.x_hi} {die.y_hi} "
            f"RowHeight {netlist.row_height} SiteWidth {netlist.site_width}\n"
        )
        for rect in netlist.blockages:
            f.write(
                f"Blockage {rect.x_lo} {rect.y_lo} {rect.x_hi} {rect.y_hi}\n"
            )

    if bounds is not None and len(bounds) > 0:
        with open(base + ".mb", "w") as f:
            for bound in bounds:
                coords = " ".join(
                    f"{r.x_lo} {r.y_lo} {r.x_hi} {r.y_hi}"
                    for r in bound.area
                )
                f.write(f"{bound.name} {bound.kind} {coords}\n")

    with open(base + ".aux", "w") as f:
        files = [
            f"{name}.nodes",
            f"{name}.nets",
            f"{name}.pl",
            f"{name}.scl",
        ]
        if bounds is not None and len(bounds) > 0:
            files.append(f"{name}.mb")
        f.write("RowBasedPlacement : " + " ".join(files) + "\n")


def load_instance(
    directory: str, name: str
) -> Tuple[Netlist, MoveBoundSet]:
    """Read an instance previously written by :func:`save_instance`."""
    base = os.path.join(directory, name)

    # die first (the Netlist constructor needs it)
    die: Optional[Rect] = None
    row_height = 1.0
    site_width = 1.0
    blockages: List[Rect] = []
    with open(base + ".scl") as f:
        for line in f:
            parts = line.split()
            if not parts:
                continue
            if parts[0] == "Die":
                die = Rect(*map(float, parts[1:5]))
                row_height = float(parts[6])
                site_width = float(parts[8])
            elif parts[0] == "Blockage":
                blockages.append(Rect(*map(float, parts[1:5])))
    if die is None:
        raise ValueError(f"{base}.scl has no Die line")

    netlist = Netlist(die, row_height, site_width, name=name)
    for rect in blockages:
        netlist.add_blockage(rect)

    positions = {}
    with open(base + ".pl") as f:
        for line in f:
            parts = line.split()
            if len(parts) == 3:
                positions[parts[0]] = (float(parts[1]), float(parts[2]))

    with open(base + ".nodes") as f:
        for line in f:
            parts = line.split()
            if not parts or parts[0] == "NumNodes":
                continue
            cname, width, height = parts[0], float(parts[1]), float(parts[2])
            fixed = "terminal" in parts[3:]
            movebound = None
            for token in parts[3:]:
                if token.startswith("movebound="):
                    movebound = token.split("=", 1)[1]
            x, y = positions.get(cname, die.center)
            netlist.add_cell(
                cname, width, height, x=x, y=y, fixed=fixed, movebound=movebound
            )
    netlist.finalize()

    with open(base + ".nets") as f:
        net_name = None
        weight = 1.0
        pins: List[Pin] = []
        for line in f:
            parts = line.split()
            if not parts or parts[0] == "NumNets":
                continue
            if parts[0] == "NetDegree":
                if net_name is not None:
                    netlist.add_net(net_name, pins, weight)
                net_name = parts[3]
                weight = float(parts[4]) if len(parts) > 4 else 1.0
                pins = []
            elif parts[0] == "PAD":
                pins.append(Pin.terminal(float(parts[2]), float(parts[3])))
            else:
                idx = netlist.cell_index(parts[0])
                pins.append(Pin(idx, float(parts[2]), float(parts[3])))
        if net_name is not None:
            netlist.add_net(net_name, pins, weight)

    bounds = MoveBoundSet(die)
    if os.path.exists(base + ".mb"):
        with open(base + ".mb") as f:
            for line in f:
                parts = line.split()
                if len(parts) < 6:
                    continue
                bname, kind = parts[0], parts[1]
                coords = list(map(float, parts[2:]))
                rects = [
                    Rect(*coords[i : i + 4])
                    for i in range(0, len(coords), 4)
                ]
                bounds.add(MoveBound(bname, RectSet(rects), kind))
    return netlist, bounds
