"""Standard-cell rows and row segments.

Rows are horizontal strips of height ``row_height`` aligned to the die
bottom.  A :class:`RowSegment` is the placeable part of one row inside
one rectangle, after subtracting blockages and fixed cells.  Segments
clipped to a region's rectangles drive the movebound-aware legalizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.geometry import Rect
from repro.netlist import Netlist


@dataclass
class RowSegment:
    """A contiguous placeable interval of one row."""

    y_lo: float  # bottom of the row
    x_lo: float
    x_hi: float
    row_height: float

    @property
    def width(self) -> float:
        return self.x_hi - self.x_lo

    @property
    def y_center(self) -> float:
        return self.y_lo + self.row_height / 2

    def rect(self) -> Rect:
        return Rect(self.x_lo, self.y_lo, self.x_hi, self.y_lo + self.row_height)


def _subtract_interval(
    segments: List[RowSegment], x_lo: float, x_hi: float
) -> List[RowSegment]:
    """Remove [x_lo, x_hi] from each segment (splitting as needed)."""
    out: List[RowSegment] = []
    for seg in segments:
        if x_hi <= seg.x_lo or x_lo >= seg.x_hi:
            out.append(seg)
            continue
        if x_lo > seg.x_lo:
            out.append(RowSegment(seg.y_lo, seg.x_lo, x_lo, seg.row_height))
        if x_hi < seg.x_hi:
            out.append(RowSegment(seg.y_lo, x_hi, seg.x_hi, seg.row_height))
    return out


def build_segments(
    netlist: Netlist,
    area: Iterable[Rect] = (),
    min_width: float = 0.0,
) -> List[RowSegment]:
    """Row segments inside the given rectangles (default: whole die),
    minus blockages and fixed cells.

    Rows are aligned to the global row grid ``die.y_lo + k * row_height``
    so segments from different regions always stack compatibly.  Only
    rows fully contained in a rectangle are used.
    """
    die = netlist.die
    h = netlist.row_height
    rects = list(area) or [die]
    min_width = max(min_width, netlist.site_width)

    obstacles: List[Rect] = list(netlist.blockages)
    for cell in netlist.cells:
        if cell.fixed:
            obstacles.append(netlist.cell_rect(cell.index))

    segments: List[RowSegment] = []
    for rect in rects:
        k_lo = math.ceil((rect.y_lo - die.y_lo) / h - 1e-9)
        k_hi = math.floor((rect.y_hi - die.y_lo) / h + 1e-9)
        for k in range(k_lo, k_hi):
            y = die.y_lo + k * h
            if y + h > rect.y_hi + 1e-9:
                continue
            row_segments = [RowSegment(y, rect.x_lo, rect.x_hi, h)]
            for ob in obstacles:
                if ob.y_lo < y + h - 1e-9 and ob.y_hi > y + 1e-9:
                    row_segments = _subtract_interval(
                        row_segments, ob.x_lo, ob.x_hi
                    )
            # snap segment ends inward to the site grid so capacities
            # are site-exact (unaligned ends are unusable anyway)
            site = netlist.site_width
            for s in row_segments:
                if site > 0:
                    x_lo = die.x_lo + math.ceil(
                        (s.x_lo - die.x_lo) / site - 1e-9
                    ) * site
                    x_hi = die.x_lo + math.floor(
                        (s.x_hi - die.x_lo) / site + 1e-9
                    ) * site
                    s.x_lo, s.x_hi = x_lo, x_hi
            segments.extend(
                s for s in row_segments if s.width >= min_width
            )
    segments.sort(key=lambda s: (s.y_lo, s.x_lo))
    return segments


def total_segment_capacity(segments: Sequence[RowSegment]) -> float:
    return sum(s.width * s.row_height for s in segments)


def max_std_cell_width(netlist: Netlist) -> float:
    """Widest movable standard cell (row-height) in the design."""
    widths = [
        c.width
        for c in netlist.cells
        if not c.fixed and c.height <= netlist.row_height + 1e-9
    ]
    return max(widths, default=netlist.site_width)


def usable_row_capacity(
    segments: Sequence[RowSegment], w_max: float
) -> float:
    """Packing-aware capacity of row segments.

    Whole-cell packing wastes up to about half the widest cell per
    segment (first-fit-decreasing leftovers), so each segment is
    discounted by ``w_max / 2``; segments narrower than ``w_max``
    contribute nothing reliable.  This is the capacity the legalizer
    and the workload feasibility gate agree on — geometric area
    systematically overestimates it on fragmented regions.
    """
    total = 0.0
    for s in segments:
        usable = s.width - 0.5 * w_max
        if usable > 0:
            total += usable * s.row_height
    return total
