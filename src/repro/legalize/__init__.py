"""Legalization.

The paper uses BonnPlace legalization [6] (minimum total movement) and
shows (§III) how movebounds are honored: decompose the chip into
regions, partition cells onto regions by the §III transportation step,
and legalize each region's cells inside the region — cells of
*different* movebounds sharing a region are legalized simultaneously.

This package provides:

* :mod:`repro.legalize.rows` — standard-cell row segments (per die or
  clipped to a region), minus blockages and fixed cells;
* :mod:`repro.legalize.abacus` — Abacus-style minimum-movement row
  legalization (cluster dynamic programming);
* :mod:`repro.legalize.tetris` — the classical Tetris greedy baseline;
* :mod:`repro.legalize.region` — the region-aware movebound legalizer
  built from the pieces above;
* :mod:`repro.legalize.checks` — legality checking (overlaps, row
  alignment, die bounds, movebound containment).
"""

from repro.legalize.rows import RowSegment, build_segments
from repro.legalize.abacus import abacus_legalize
from repro.legalize.tetris import tetris_legalize
from repro.legalize.region import LegalizationReport, legalize_with_movebounds
from repro.legalize.checks import LegalityReport, check_legality

__all__ = [
    "RowSegment",
    "build_segments",
    "abacus_legalize",
    "tetris_legalize",
    "LegalizationReport",
    "legalize_with_movebounds",
    "LegalityReport",
    "check_legality",
]
