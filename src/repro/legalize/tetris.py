"""Tetris legalization — the classical greedy baseline.

Cells are processed left to right; each is placed at the cheapest
currently-free position across nearby rows, packing against a per-row
frontier.  Fast, legal, but ignorant of capacities, regions and
movebounds — which is exactly why the naive baseline placer paired
with it produces movebound violations (Tables IV/V, "viol." column).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.legalize.rows import RowSegment
from repro.netlist import Netlist


def tetris_legalize(
    netlist: Netlist,
    cell_indices: Sequence[int],
    segments: Sequence[RowSegment],
    row_candidates: int = 40,
) -> float:
    """Greedy left-to-right packing.  Returns total L1 displacement.

    Each segment keeps a frontier (next free x).  A cell goes to the
    segment minimizing ``|y - row| + |x - position|`` where position is
    ``max(frontier, preferred x)`` if it fits, else the frontier.
    """
    segs = sorted(segments, key=lambda s: (s.y_lo, s.x_lo))
    frontier = [s.x_lo for s in segs]
    cells = [i for i in cell_indices if not netlist.cells[i].fixed]
    cells.sort(key=lambda i: netlist.x[i])

    total = 0.0
    for i in cells:
        w = netlist.cells[i].width
        x, y = netlist.x[i], netlist.y[i]
        ranked = sorted(
            range(len(segs)), key=lambda j: abs(segs[j].y_center - y)
        )
        best: Optional[Tuple[float, int, float]] = None
        tried = 0
        for j in ranked:
            seg = segs[j]
            if seg.x_hi - frontier[j] < w - 1e-9:
                continue
            tried += 1
            pos = max(frontier[j], min(x - w / 2, seg.x_hi - w))
            cost = abs(seg.y_center - y) + abs(pos + w / 2 - x)
            if best is None or cost < best[0]:
                best = (cost, j, pos)
            if tried >= row_candidates and best is not None:
                break
        if best is None:
            raise ValueError(
                f"tetris: no room for cell {netlist.cells[i].name!r}"
            )
        _cost, j, pos = best
        site = netlist.site_width
        if site > 0:
            pos = segs[j].x_lo + round((pos - segs[j].x_lo) / site) * site
            pos = max(pos, frontier[j])
            if pos + w > segs[j].x_hi + 1e-9:
                pos = frontier[j]
        total += abs(pos + w / 2 - x) + abs(segs[j].y_center - y)
        netlist.x[i] = pos + w / 2
        netlist.y[i] = segs[j].y_center
        frontier[j] = pos + w
    return total
