"""Abacus-style row legalization (minimum quadratic movement per row).

Cells assigned to a row segment are placed in x-order without overlap,
minimizing the sum of squared displacements, by the classical cluster
dynamic programming: cells are appended one by one; whenever a cell
collides with the previous cluster, the clusters merge and the merged
cluster's optimal position is recomputed in O(1) from accumulated
weights.  Site alignment is applied at the end.

Row *assignment* (which segment each cell goes to) is a greedy
nearest-row search with capacity bookkeeping — the combination is the
standard practical pipeline (Spindler et al.'s Abacus), and a faithful
stand-in for the minimum-movement legalization [6] the paper calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.legalize.rows import RowSegment
from repro.netlist import Netlist


@dataclass
class _Cluster:
    x: float  # optimal left edge
    weight: float = 0.0
    q: float = 0.0  # sum of w_i * (x_i' - offset_i)
    width: float = 0.0
    cells: List[int] = field(default_factory=list)


def _place_row(
    netlist: Netlist,
    segment: RowSegment,
    cells: Sequence[int],
) -> float:
    """Abacus placeRow: legalize `cells` (sorted by x) into the segment.

    Returns the total squared displacement; writes positions (centers).
    """
    clusters: List[_Cluster] = []
    for i in cells:
        w = netlist.cells[i].width
        weight = max(netlist.cells[i].size, 1e-9)
        x_pref = netlist.x[i] - w / 2  # preferred left edge
        x_pref = min(max(x_pref, segment.x_lo), segment.x_hi - w)
        cluster = _Cluster(x=x_pref, weight=weight, q=weight * x_pref, width=w)
        cluster.cells.append(i)
        clusters.append(cluster)
        # merge while overlapping the previous cluster
        while len(clusters) > 1:
            prev, cur = clusters[-2], clusters[-1]
            if prev.x + prev.width <= cur.x + 1e-12:
                break
            # merge cur into prev
            prev.q += cur.q - cur.weight * prev.width
            prev.weight += cur.weight
            prev.cells.extend(cur.cells)
            prev.width += cur.width
            prev.x = prev.q / prev.weight
            prev.x = min(
                max(prev.x, segment.x_lo), segment.x_hi - prev.width
            )
            clusters.pop()
        # clamp the (possibly fresh) last cluster
        last = clusters[-1]
        last.x = min(max(last.x, segment.x_lo), segment.x_hi - last.width)

    total_sq = 0.0
    site = netlist.site_width
    for cluster in clusters:
        # site alignment of the cluster's left edge
        x = cluster.x
        if site > 0:
            snapped = segment.x_lo + round((x - segment.x_lo) / site) * site
            if snapped + cluster.width <= segment.x_hi + 1e-9:
                x = max(snapped, segment.x_lo)
            else:
                x = segment.x_lo + math.floor(
                    (segment.x_hi - cluster.width - segment.x_lo) / site
                ) * site
        for i in cluster.cells:
            w = netlist.cells[i].width
            old_x, old_y = netlist.x[i], netlist.y[i]
            netlist.x[i] = x + w / 2
            netlist.y[i] = segment.y_lo + netlist.row_height / 2
            total_sq += (netlist.x[i] - old_x) ** 2 + (
                netlist.y[i] - old_y
            ) ** 2
            x += w
    return total_sq


def _assign_to_segments(
    netlist: Netlist,
    cells: List[int],
    segs: List[RowSegment],
    candidates: int,
) -> Dict[int, List[int]]:
    """Minimum-movement cell->segment assignment via transportation.

    Each cell only gets arcs to its `candidates` nearest segments (by a
    displacement lower bound); if that restriction is infeasible the
    candidate set widens until it covers all segments.
    """
    from repro.flows import round_almost_integral, solve_transportation

    n, k = len(cells), len(segs)
    supplies = np.array([netlist.cells[i].width for i in cells])
    caps = np.array([s.width for s in segs])

    def lower_bound(i: int, j: int) -> float:
        s = segs[j]
        x, y = netlist.x[cells[i]], netlist.y[cells[i]]
        w = netlist.cells[cells[i]].width
        dx = max(s.x_lo + w / 2 - x, 0.0, x - (s.x_hi - w / 2))
        return abs(s.y_center - y) + max(dx, 0.0)

    limit = min(max(candidates, 4), k)
    while True:
        costs = np.full((n, k), np.inf)
        for i in range(n):
            ranked = sorted(range(k), key=lambda j: lower_bound(i, j))
            for j in ranked[:limit]:
                costs[i, j] = lower_bound(i, j)
        tr = solve_transportation(supplies, caps, costs)
        if tr.feasible:
            break
        if limit >= k:
            raise ValueError(
                "segment assignment infeasible even with all candidates"
            )
        limit = min(limit * 4, k)

    assignment, _overflow = round_almost_integral(tr, supplies, caps, costs)
    # repair: shift whole-cell overflow to segments with slack
    load = np.zeros(k)
    for i, j in enumerate(assignment):
        load[j] += supplies[i]
    repaired = True
    for j in range(k):
        while load[j] > caps[j] + 1e-9:
            movers = [i for i in range(n) if assignment[i] == j]
            movers.sort(key=lambda i: supplies[i])
            moved = False
            for i in movers:
                targets = sorted(
                    range(k), key=lambda t: lower_bound(i, t)
                )
                for t in targets:
                    if t != j and load[t] + supplies[i] <= caps[t] + 1e-9:
                        assignment[i] = t
                        load[j] -= supplies[i]
                        load[t] += supplies[i]
                        moved = True
                        break
                if moved:
                    break
            if not moved:
                repaired = False
                break
        if not repaired:
            break
    if not repaired:
        # first-fit decreasing over all cells: the bin-packing fallback
        order = sorted(range(n), key=lambda i: -supplies[i])
        assignment = np.full(n, -1, dtype=np.int64)
        load = np.zeros(k)
        for i in order:
            for t in sorted(range(k), key=lambda t: lower_bound(i, t)):
                if load[t] + supplies[i] <= caps[t] + 1e-9:
                    assignment[i] = t
                    load[t] += supplies[i]
                    break
            if assignment[i] < 0:
                raise ValueError(
                    "segment packing failed even with first-fit "
                    f"decreasing (cell width {supplies[i]:.2f})"
                )

    seg_cells: Dict[int, List[int]] = {}
    for i, j in enumerate(assignment):
        seg_cells.setdefault(int(j), []).append(cells[i])
    return seg_cells


def abacus_legalize(
    netlist: Netlist,
    cell_indices: Sequence[int],
    segments: Sequence[RowSegment],
    row_search_radius: int = 24,
) -> float:
    """Legalize standard cells into row segments.

    Cells must have height equal to the row height.  Returns total
    squared displacement.  Raises when the segments cannot hold the
    cells (caller must partition within capacity first).
    """
    cells = [
        i
        for i in cell_indices
        if not netlist.cells[i].fixed
    ]
    if not cells:
        return 0.0
    for i in cells:
        if netlist.cells[i].height > netlist.row_height + 1e-9:
            raise ValueError(
                f"cell {netlist.cells[i].name!r} is taller than a row; "
                "legalize macros separately"
            )
    total_width = sum(netlist.cells[i].width for i in cells)
    seg_capacity = sum(s.width for s in segments)
    if total_width > seg_capacity + 1e-6:
        raise ValueError(
            f"cells ({total_width:.1f}) exceed segment capacity "
            f"({seg_capacity:.1f})"
        )

    # Segment assignment as a transportation problem: supply = cell
    # width, capacity = segment width, cost = displacement lower bound.
    # This is the minimum-movement assignment of [6] at segment
    # granularity and — unlike a greedy fill — cannot strand a cell on
    # fragmented leftovers while total capacity suffices.
    segs = sorted(segments, key=lambda s: (s.y_lo, s.x_lo))
    seg_cells = _assign_to_segments(netlist, cells, segs, row_search_radius)

    total_sq = 0.0
    for j, members in seg_cells.items():
        members.sort(key=lambda i: netlist.x[i])
        total_sq += _place_row(netlist, segs[j], members)
    return total_sq
