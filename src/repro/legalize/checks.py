"""Legality checking.

A placement is legal when every movable cell is inside the die, off all
blockages and fixed cells, on a row (standard cells), on a site, does
not overlap any other cell — and, with movebounds, is contained in its
movebound area and outside foreign exclusive areas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist

TOL = 1e-6


@dataclass
class LegalityReport:
    """Violation counts of a placement (all zero = legal)."""

    overlaps: int = 0
    out_of_die: int = 0
    off_row: int = 0
    off_site: int = 0
    on_blockage: int = 0
    movebound_violations: int = 0
    overlap_pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def is_legal(self) -> bool:
        return (
            self.overlaps == 0
            and self.out_of_die == 0
            and self.off_row == 0
            and self.on_blockage == 0
            and self.movebound_violations == 0
        )

    def summary(self) -> str:
        if self.is_legal:
            return "legal"
        return (
            f"overlaps={self.overlaps} out_of_die={self.out_of_die} "
            f"off_row={self.off_row} off_site={self.off_site} "
            f"on_blockage={self.on_blockage} "
            f"movebounds={self.movebound_violations}"
        )


def check_legality(
    netlist: Netlist,
    bounds: Optional[MoveBoundSet] = None,
    check_sites: bool = False,
    max_overlap_pairs: int = 50,
) -> LegalityReport:
    """Full legality audit of the current placement."""
    report = LegalityReport()
    report.out_of_die = len(netlist.check_in_die(TOL))

    movable = [c for c in netlist.cells if not c.fixed]
    die = netlist.die
    h = netlist.row_height
    site = netlist.site_width

    for cell in movable:
        rect = netlist.cell_rect(cell.index)
        if cell.height <= h + TOL:
            k = (rect.y_lo - die.y_lo) / h
            if abs(k - round(k)) > 1e-4:
                report.off_row += 1
        if check_sites and site > 0:
            s = (rect.x_lo - die.x_lo) / site
            if abs(s - round(s)) > 1e-4:
                report.off_site += 1
        if netlist.blockages.intersection_area(rect) > TOL * max(
            rect.area, 1.0
        ):
            report.on_blockage += 1

    # overlap sweep: sort by x_lo; compare while x-intervals intersect
    rects = [
        (netlist.cell_rect(c.index), c.index)
        for c in netlist.cells
    ]
    rects.sort(key=lambda t: t[0].x_lo)
    for a in range(len(rects)):
        ra, ia = rects[a]
        for b in range(a + 1, len(rects)):
            rb, ib = rects[b]
            if rb.x_lo >= ra.x_hi - TOL:
                break
            if netlist.cells[ia].fixed and netlist.cells[ib].fixed:
                continue
            if ra.overlaps(rb) and ra.intersection_area(rb) > TOL:
                report.overlaps += 1
                if len(report.overlap_pairs) < max_overlap_pairs:
                    report.overlap_pairs.append((ia, ib))

    if bounds is not None:
        report.movebound_violations = len(bounds.violations(netlist))
    return report
