"""Legality checking.

A placement is legal when every movable cell is inside the die, off all
blockages and fixed cells, on a row (standard cells), on a site, does
not overlap any other cell — and, with movebounds, is contained in its
movebound area and outside foreign exclusive areas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.movebounds import MoveBoundSet
from repro.netlist import Netlist

TOL = 1e-6


@dataclass
class LegalityReport:
    """Violation counts of a placement (all zero = legal)."""

    overlaps: int = 0
    out_of_die: int = 0
    off_row: int = 0
    off_site: int = 0
    on_blockage: int = 0
    movebound_violations: int = 0
    overlap_pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def is_legal(self) -> bool:
        return (
            self.overlaps == 0
            and self.out_of_die == 0
            and self.off_row == 0
            and self.on_blockage == 0
            and self.movebound_violations == 0
        )

    def summary(self) -> str:
        if self.is_legal:
            return "legal"
        return (
            f"overlaps={self.overlaps} out_of_die={self.out_of_die} "
            f"off_row={self.off_row} off_site={self.off_site} "
            f"on_blockage={self.on_blockage} "
            f"movebounds={self.movebound_violations}"
        )


def check_legality(
    netlist: Netlist,
    bounds: Optional[MoveBoundSet] = None,
    check_sites: bool = False,
    max_overlap_pairs: int = 50,
) -> LegalityReport:
    """Full legality audit of the current placement."""
    report = LegalityReport()
    report.out_of_die = len(netlist.check_in_die(TOL))

    movable, hw, hh = netlist._dim_arrays()
    die = netlist.die
    h = netlist.row_height
    site = netlist.site_width

    xl = netlist.x - hw
    xh = netlist.x + hw
    yl = netlist.y - hh
    yh = netlist.y + hh

    std = movable & (2.0 * hh <= h + TOL)
    k = (yl[std] - die.y_lo) / h
    report.off_row = int(np.count_nonzero(np.abs(k - np.round(k)) > 1e-4))
    if check_sites and site > 0:
        s = (xl[movable] - die.x_lo) / site
        report.off_site = int(
            np.count_nonzero(np.abs(s - np.round(s)) > 1e-4)
        )
    if len(netlist.blockages):
        # accumulate blockage coverage per cell, one vector op per rect
        cov = np.zeros(netlist.num_cells)
        for r in netlist.blockages:
            w = np.minimum(xh, r.x_hi) - np.maximum(xl, r.x_lo)
            d = np.minimum(yh, r.y_hi) - np.maximum(yl, r.y_lo)
            cov += np.where((w > 0) & (d > 0), w * d, 0.0)
        areas = (xh - xl) * (yh - yl)
        report.on_blockage = int(
            np.count_nonzero(
                movable & (cov > TOL * np.maximum(areas, 1.0))
            )
        )

    # overlap sweep: sort by x_lo; a cell's partners are the contiguous
    # run of later cells whose x_lo is left of its x_hi - TOL
    order = np.argsort(xl, kind="stable")
    sxl, sxh = xl[order], xh[order]
    syl, syh = yl[order], yh[order]
    sfix = ~movable[order]
    n = len(order)
    starts = np.arange(n) + 1
    ends = np.maximum(
        np.searchsorted(sxl, sxh - TOL, side="left"), starts
    )
    counts = ends - starts
    a_idx = np.repeat(np.arange(n), counts)
    offs = np.arange(counts.sum()) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    b_idx = np.repeat(starts, counts) + offs
    live = ~(sfix[a_idx] & sfix[b_idx])
    ow = np.minimum(sxh[a_idx], sxh[b_idx]) - np.maximum(
        sxl[a_idx], sxl[b_idx]
    )
    oh = np.minimum(syh[a_idx], syh[b_idx]) - np.maximum(
        syl[a_idx], syl[b_idx]
    )
    hit = (
        live
        & (sxl[a_idx] < sxh[b_idx])
        & (sxl[b_idx] < sxh[a_idx])
        & (syl[a_idx] < syh[b_idx])
        & (syl[b_idx] < syh[a_idx])
        & (ow > 0)
        & (oh > 0)
        & (ow * oh > TOL)
    )
    report.overlaps = int(np.count_nonzero(hit))
    if report.overlaps:
        where = np.nonzero(hit)[0][:max_overlap_pairs]
        report.overlap_pairs = [
            (int(order[a_idx[i]]), int(order[b_idx[i]])) for i in where
        ]

    if bounds is not None:
        report.movebound_violations = len(bounds.violations(netlist))
    return report
