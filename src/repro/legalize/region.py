"""Region-aware legalization with movebounds (paper §III, last part).

Pipeline:

1. Decompose the chip into maximal regions; partition all movable
   standard cells onto regions with the §III transportation step
   (capacities = region free area; forbidden arcs per movebounds).
   After global placement this assignment is near-identity — cells are
   already in admissible regions — so movement is small.
2. For each region, build row segments clipped to the region's free
   rectangles and run Abacus there.  Cells of *different* movebounds
   that share a region are hence legalized simultaneously, which is the
   paper's point about overlapping movebounds.

Movable macros (taller than a row) are placed first by a greedy
minimum-displacement search and then act as obstacles for the rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geometry import Rect, RectSet
from repro.legalize.abacus import abacus_legalize
from repro.legalize.rows import (
    RowSegment,
    build_segments,
    max_std_cell_width,
    usable_row_capacity,
)
from repro.movebounds import (
    MoveBoundSet,
    RegionDecomposition,
    decompose_regions,
)
from repro.netlist import Netlist
from repro.obs import incr, span
from repro.partitioning.transport import TransportTargets, partition_cells
from repro.resilience.errors import InfeasibleInputError, PipelineStageError
from repro.resilience.faultinject import inject


@dataclass
class LegalizationReport:
    """Accounting of a movebound-aware legalization run."""

    total_sq_movement: float = 0.0
    macro_count: int = 0
    region_runs: int = 0
    relaxed: bool = False
    seconds: float = 0.0


def _legalize_macros(netlist: Netlist, macros: List[int]) -> int:
    """Greedy minimum-displacement placement of movable macros on the
    row grid; placed macros become fixed obstacles for later cells."""
    die = netlist.die
    h = netlist.row_height
    placed: List[Rect] = [
        netlist.cell_rect(c.index) for c in netlist.cells if c.fixed
    ] + list(netlist.blockages)
    # big ones first
    macros = sorted(macros, key=lambda i: -netlist.cells[i].size)
    for i in macros:
        cell = netlist.cells[i]
        best: Optional[Tuple[float, float, float]] = None
        # spiral search over row-aligned candidate positions
        y0 = die.y_lo + round((netlist.y[i] - cell.height / 2 - die.y_lo) / h) * h
        for ky in range(0, 2 * int(die.height / h) + 1):
            sign = 1 if ky % 2 == 0 else -1
            y = y0 + sign * ((ky + 1) // 2) * h
            if y < die.y_lo or y + cell.height > die.y_hi:
                continue
            if best is not None and abs(y - (netlist.y[i] - cell.height / 2)) > best[0]:
                break
            step = max(netlist.site_width, cell.width / 8)
            x0 = netlist.x[i] - cell.width / 2
            for kx in range(0, 2 * int(die.width / step) + 1):
                sx = 1 if kx % 2 == 0 else -1
                x = x0 + sx * ((kx + 1) // 2) * step
                if x < die.x_lo or x + cell.width > die.x_hi:
                    continue
                cand = Rect(x, y, x + cell.width, y + cell.height)
                cost = abs(x - x0) + abs(y - (netlist.y[i] - cell.height / 2))
                if best is not None and cost >= best[0]:
                    if abs(x - x0) > best[0]:
                        break
                    continue
                if any(cand.overlaps(p) for p in placed):
                    continue
                best = (cost, x, y)
        if best is None:
            raise PipelineStageError(
                f"cannot legalize macro {cell.name!r}",
                stage="legalize.macros",
            )
        _cost, x, y = best
        netlist.x[i] = x + cell.width / 2
        netlist.y[i] = y + cell.height / 2
        placed.append(netlist.cell_rect(i))
        cell.fixed = True  # obstacle for the rest; restored by caller
        netlist._dim_cache = None
    return len(macros)


def legalize_with_movebounds(
    netlist: Netlist,
    bounds: Optional[MoveBoundSet] = None,
    decomposition: Optional[RegionDecomposition] = None,
) -> LegalizationReport:
    """Legalize the current placement, honoring movebounds exactly."""
    inject("stage.legalize")
    with span("legalize.region") as sp:
        report = _legalize_with_movebounds_impl(
            netlist, bounds, decomposition
        )
    report.seconds = sp.wall_s
    incr("legalize.runs")
    incr("legalize.region_runs", report.region_runs)
    incr("legalize.macros", report.macro_count)
    return report


def _legalize_with_movebounds_impl(
    netlist: Netlist,
    bounds: Optional[MoveBoundSet],
    decomposition: Optional[RegionDecomposition],
) -> LegalizationReport:
    report = LegalizationReport()
    if bounds is None:
        bounds = MoveBoundSet(netlist.die)
    if decomposition is None:
        decomposition = decompose_regions(
            netlist.die, bounds, netlist.blockages
        )

    # 1. movable macros first (they become row obstacles)
    macros = [
        c.index
        for c in netlist.cells
        if not c.fixed and c.height > netlist.row_height + 1e-9
    ]
    unfix = []
    if macros:
        with span("legalize.macros"):
            report.macro_count = _legalize_macros(netlist, macros)
        unfix = macros

    try:
        std_cells = [
            c.index
            for c in netlist.cells
            if not c.fixed and c.height <= netlist.row_height + 1e-9
        ]

        # 2 + 3. partition standard cells onto regions (§III) and run
        # per-region Abacus.  When a region's segment packing fails
        # (fragmented slivers), its advertised capacity shrinks and the
        # partition re-runs — a small feedback loop that converges
        # because capacity only ever decreases.
        region_segments: Dict[int, List[RowSegment]] = {}
        base_caps: Dict[int, float] = {}
        areas_by_region: Dict[int, RectSet] = {}
        w_max = max_std_cell_width(netlist)
        for region in decomposition:
            segments = build_segments(netlist, region.free_area)
            if not segments:
                continue
            region_segments[region.index] = segments
            base_caps[region.index] = 0.97 * usable_row_capacity(
                segments, w_max
            )
            areas_by_region[region.index] = region.free_area
        region_by_index = {r.index: r for r in decomposition}

        multiplier: Dict[int, float] = {r: 1.0 for r in base_caps}
        before = netlist.snapshot()
        last_error: Optional[Exception] = None
        for _attempt in range(6):
            netlist.restore(before)
            keys = sorted(base_caps)
            targets = TransportTargets(
                keys,
                np.array([base_caps[r] * multiplier[r] for r in keys]),
                [areas_by_region[r] for r in keys],
                [region_by_index[r].admits for r in keys],
            )
            with span("legalize.partition"):
                outcome = partition_cells(netlist, std_cells, targets)
            if not outcome.feasible:
                raise InfeasibleInputError(
                    "legalization: no feasible region partition",
                    stage="legalize.partition",
                )
            report.relaxed = report.relaxed or outcome.relaxed

            by_region: Dict[int, List[int]] = {}
            for cell, ridx in outcome.assignment.items():
                by_region.setdefault(ridx, []).append(cell)
            failed: List[int] = []
            report.region_runs = 0
            report.total_sq_movement = 0.0
            for ridx, cells in sorted(by_region.items()):
                try:
                    with span("legalize.abacus"):
                        movement = abacus_legalize(
                            netlist, cells, region_segments[ridx]
                        )
                except ValueError as exc:
                    failed.append(ridx)
                    last_error = exc
                    continue
                report.region_runs += 1
                report.total_sq_movement += movement
            if not failed:
                break
            for ridx in failed:
                multiplier[ridx] *= 0.85
        else:
            raise PipelineStageError(
                f"legalization did not converge: {last_error}",
                stage="legalize",
            )
    finally:
        for i in unfix:
            netlist.cells[i].fixed = False
        if unfix:
            netlist._dim_cache = None

    return report
