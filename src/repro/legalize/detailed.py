"""Detailed placement: legal-to-legal HPWL refinement.

After legalization, placers run local refinement: move each cell
toward the median of its connected pins when a legal spot exists, and
swap same-width cell pairs when that shortens wirelength.  BonnPlace
has such a stage too (outside this paper's scope); it is included here
because downstream users expect a placer to ship one.

Everything stays legal by construction:

* moves only into gaps at least as wide as the cell, on the row grid,
  site-aligned;
* swaps only between equal-width cells;
* with movebounds, a destination is admissible only if the cell's
  rectangle stays inside its bound and outside foreign exclusive
  areas (checked via the region decomposition's signatures).

Deterministic: cells are visited in index order; every accepted move
strictly decreases HPWL, so passes terminate.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.legalize.rows import RowSegment, build_segments
from repro.movebounds import (
    DEFAULT_BOUND,
    MoveBoundSet,
    RegionDecomposition,
    decompose_regions,
)
from repro.netlist import Netlist


@dataclass
class DetailedReport:
    """Outcome of a detailed placement run."""

    hpwl_before: float = 0.0
    hpwl_after: float = 0.0
    moves: int = 0
    swaps: int = 0
    passes: int = 0

    @property
    def improvement(self) -> float:
        if self.hpwl_before <= 0:
            return 0.0
        return 1.0 - self.hpwl_after / self.hpwl_before


class _Rows:
    """Occupancy structure: per segment, sorted (x_left, cell) pairs."""

    def __init__(self, netlist: Netlist, segments: List[RowSegment]):
        self.netlist = netlist
        self.segments = segments
        self.entries: List[List[Tuple[float, int]]] = [
            [] for _ in segments
        ]
        self.seg_of_cell: Dict[int, int] = {}
        # index segments by row for fast lookup
        self.segs_by_row: Dict[float, List[int]] = {}
        for j, seg in enumerate(segments):
            self.segs_by_row.setdefault(seg.y_lo, []).append(j)

    def locate_segment(self, cell: int) -> Optional[int]:
        nl = self.netlist
        rect = nl.cell_rect(cell)
        for j in self.segs_by_row.get(rect.y_lo, ()):
            seg = self.segments[j]
            if seg.x_lo - 1e-6 <= rect.x_lo and rect.x_hi <= seg.x_hi + 1e-6:
                return j
        return None

    def insert(self, cell: int, j: int) -> None:
        x_left = self.netlist.cell_rect(cell).x_lo
        insort(self.entries[j], (x_left, cell))
        self.seg_of_cell[cell] = j

    def remove(self, cell: int) -> None:
        j = self.seg_of_cell.pop(cell)
        x_left = self.netlist.cell_rect(cell).x_lo
        idx = bisect_left(self.entries[j], (x_left - 1e-9, -1))
        while idx < len(self.entries[j]):
            if self.entries[j][idx][1] == cell:
                self.entries[j].pop(idx)
                return
            idx += 1
        raise KeyError(f"cell {cell} not found in its segment")

    def gaps(self, j: int) -> List[Tuple[float, float]]:
        """Free intervals (x_lo, x_hi) of segment j."""
        seg = self.segments[j]
        out = []
        cursor = seg.x_lo
        for x_left, cell in self.entries[j]:
            if x_left > cursor + 1e-9:
                out.append((cursor, x_left))
            cursor = max(
                cursor, x_left + self.netlist.cells[cell].width
            )
        if cursor < seg.x_hi - 1e-9:
            out.append((cursor, seg.x_hi))
        return out


def _median_target(netlist: Netlist, nets_of_cell, cell: int) -> Tuple[float, float]:
    """Median of the other pins on the cell's nets (the classic optimal
    single-cell position under HPWL)."""
    xs: List[float] = []
    ys: List[float] = []
    for nidx in nets_of_cell.get(cell, ()):
        net = netlist.nets[nidx]
        for pin in net.pins:
            if pin.cell_index == cell:
                continue
            px, py = netlist.pin_position(pin)
            xs.append(px)
            ys.append(py)
    if not xs:
        return netlist.x[cell], netlist.y[cell]
    return float(np.median(xs)), float(np.median(ys))


def _nets_hpwl(netlist: Netlist, nets_of_cell, cells) -> float:
    seen = set()
    total = 0.0
    for cell in cells:
        for nidx in nets_of_cell.get(cell, ()):
            if nidx in seen:
                continue
            seen.add(nidx)
            net = netlist.nets[nidx]
            if net.degree < 2:
                continue
            box = netlist.net_bbox(net)
            total += net.weight * (box.width + box.height)
    return total


def detailed_place(
    netlist: Netlist,
    bounds: Optional[MoveBoundSet] = None,
    decomposition: Optional[RegionDecomposition] = None,
    passes: int = 2,
    row_radius: int = 4,
    max_candidates: int = 12,
    density_target: Optional[float] = None,
    cells: Optional[List[int]] = None,
) -> DetailedReport:
    """Refine a legal placement without breaking legality.

    With ``density_target`` set, moves into bins whose utilization
    already exceeds the target are rejected (keeps the ISPD-style
    density penalty from creeping back in through refinement).
    ``cells`` restricts the sweep to the given cell indices (the ECO
    frontier); row occupancy is still built for the whole die, so
    scoped moves respect every neighbor.
    """
    report = DetailedReport(hpwl_before=netlist.hpwl())
    if bounds is None:
        bounds = MoveBoundSet(netlist.die)
    if decomposition is None:
        decomposition = decompose_regions(
            netlist.die, bounds, netlist.blockages
        )

    nets_of_cell: Dict[int, List[int]] = {}
    for nidx, net in enumerate(netlist.nets):
        for pin in net.pins:
            if pin.cell_index >= 0:
                nets_of_cell.setdefault(pin.cell_index, []).append(nidx)

    # movable macros act as obstacles for the row structure (they were
    # already legalized; standard cells must not slide under them)
    macros = [
        c.index
        for c in netlist.cells
        if not c.fixed and c.height > netlist.row_height + 1e-9
    ]
    for i in macros:
        netlist.cells[i].fixed = True
    netlist._dim_cache = None
    try:
        segments = build_segments(netlist)
    finally:
        for i in macros:
            netlist.cells[i].fixed = False
        if macros:
            netlist._dim_cache = None
    rows = _Rows(netlist, segments)
    std_cells = []
    for c in netlist.cells:
        if c.fixed or c.height > netlist.row_height + 1e-9:
            continue
        j = rows.locate_segment(c.index)
        if j is None:
            continue  # not on the row grid: leave untouched
        rows.insert(c.index, j)
        std_cells.append(c.index)

    dmap = None
    if density_target is not None:
        from repro.metrics.density import DensityMap, default_bin_count

        nb = default_bin_count(netlist)
        dmap = DensityMap(netlist, nb, nb)

    def density_ok(cell: int, x_center: float, y_center: float) -> bool:
        if dmap is None:
            return True
        i, j = dmap.bin_of(x_center, y_center)
        cap = dmap.capacity[i, j]
        if cap <= 1e-9:
            return False
        # moving within the same bin never changes its utilization
        if dmap.bin_of(netlist.x[cell], netlist.y[cell]) == (i, j):
            return True
        size = netlist.cells[cell].size
        return (dmap.usage[i, j] + size) / cap <= density_target + 1e-9

    def density_commit(cell: int, old_x: float, old_y: float) -> None:
        if dmap is None:
            return
        size = netlist.cells[cell].size
        i0, j0 = dmap.bin_of(old_x, old_y)
        i1, j1 = dmap.bin_of(netlist.x[cell], netlist.y[cell])
        if (i0, j0) != (i1, j1):
            dmap.usage[i0, j0] -= size
            dmap.usage[i1, j1] += size

    def admissible(cell: int, x_center: float, y_center: float) -> bool:
        c = netlist.cells[cell]
        from repro.geometry import Rect

        rect = Rect(
            x_center - c.width / 2,
            y_center - c.height / 2,
            x_center + c.width / 2,
            y_center + c.height / 2,
        )
        bound_name = c.movebound or DEFAULT_BOUND
        region = decomposition.region_at(x_center, y_center)
        if region is None or not region.admits(bound_name):
            return False
        return bounds.get(bound_name).area.contains_rect(rect) if (
            c.movebound or len(bounds)
        ) else True

    def try_move(cell: int) -> bool:
        c = netlist.cells[cell]
        tx, ty = _median_target(netlist, nets_of_cell, cell)
        j_cur = rows.seg_of_cell[cell]
        # candidate segments: rows near the target y
        candidates: List[Tuple[float, int, float]] = []
        site = netlist.site_width
        for y_lo, seg_ids in rows.segs_by_row.items():
            if abs(y_lo + netlist.row_height / 2 - ty) > (
                row_radius + 0.5
            ) * netlist.row_height:
                continue
            for j in seg_ids:
                for g_lo, g_hi in rows.gaps(j):
                    if g_hi - g_lo < c.width - 1e-9:
                        continue
                    x_left = min(max(tx - c.width / 2, g_lo), g_hi - c.width)
                    if site > 0:
                        x_left = g_lo + round((x_left - g_lo) / site) * site
                        if x_left + c.width > g_hi + 1e-9:
                            x_left -= site
                        if x_left < g_lo - 1e-9:
                            continue
                    xc = x_left + c.width / 2
                    yc = y_lo + netlist.row_height / 2
                    d = abs(xc - tx) + abs(yc - ty)
                    candidates.append((d, j, xc))
        candidates.sort()
        old_x, old_y = netlist.x[cell], netlist.y[cell]
        before = _nets_hpwl(netlist, nets_of_cell, [cell])
        for d, j, xc in candidates[:max_candidates]:
            yc = rows.segments[j].y_center
            if not admissible(cell, xc, yc):
                continue
            if not density_ok(cell, xc, yc):
                continue
            netlist.x[cell], netlist.y[cell] = xc, yc
            after = _nets_hpwl(netlist, nets_of_cell, [cell])
            if after < before - 1e-9:
                # update occupancy: remove under old coords, insert new
                netlist.x[cell], netlist.y[cell] = old_x, old_y
                rows.remove(cell)
                netlist.x[cell], netlist.y[cell] = xc, yc
                rows.insert(cell, j)
                density_commit(cell, old_x, old_y)
                return True
            netlist.x[cell], netlist.y[cell] = old_x, old_y
        return False

    def try_swap(cell: int) -> bool:
        c = netlist.cells[cell]
        tx, ty = _median_target(netlist, nets_of_cell, cell)
        target_rows = [
            j
            for y_lo, seg_ids in rows.segs_by_row.items()
            if abs(y_lo + netlist.row_height / 2 - ty)
            <= (row_radius + 0.5) * netlist.row_height
            for j in seg_ids
        ]
        best_partner = None
        best_d = None
        for j in target_rows:
            for _x_left, other in rows.entries[j]:
                if other == cell:
                    continue
                o = netlist.cells[other]
                if abs(o.width - c.width) > 1e-9:
                    continue
                d = abs(netlist.x[other] - tx) + abs(netlist.y[other] - ty)
                if best_d is None or d < best_d:
                    best_d, best_partner = d, other
        if best_partner is None:
            return False
        other = best_partner
        ax, ay = netlist.x[cell], netlist.y[cell]
        bx, by = netlist.x[other], netlist.y[other]
        if not (admissible(cell, bx, by) and admissible(other, ax, ay)):
            return False
        before = _nets_hpwl(netlist, nets_of_cell, [cell, other])
        netlist.x[cell], netlist.y[cell] = bx, by
        netlist.x[other], netlist.y[other] = ax, ay
        after = _nets_hpwl(netlist, nets_of_cell, [cell, other])
        if after < before - 1e-9:
            j_c = rows.seg_of_cell[cell]
            j_o = rows.seg_of_cell[other]
            density_commit(cell, ax, ay)
            density_commit(other, bx, by)
            # rebuild the two cells' occupancy entries
            netlist.x[cell], netlist.y[cell] = ax, ay
            netlist.x[other], netlist.y[other] = bx, by
            rows.remove(cell)
            rows.remove(other)
            netlist.x[cell], netlist.y[cell] = bx, by
            netlist.x[other], netlist.y[other] = ax, ay
            rows.insert(cell, j_o)
            rows.insert(other, j_c)
            return True
        netlist.x[cell], netlist.y[cell] = ax, ay
        netlist.x[other], netlist.y[other] = bx, by
        return False

    sweep = std_cells
    if cells is not None:
        scoped = set(int(c) for c in cells)
        sweep = [c for c in std_cells if c in scoped]

    for _pass in range(passes):
        report.passes += 1
        changed = 0
        for cell in sweep:
            if try_move(cell):
                report.moves += 1
                changed += 1
            elif try_swap(cell):
                report.swaps += 1
                changed += 1
        if changed == 0:
            break

    report.hpwl_after = netlist.hpwl()
    return report
