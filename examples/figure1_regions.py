"""Figure 1 of the paper: three movebounds and their maximal regions.

An exclusive movebound N, and two inclusive movebounds M and L where
L's area is contained in M's.  The decomposition yields the maximal
movebound-pure regions; unconstrained cells may use everything except
N's area.

Run:  python examples/figure1_regions.py
"""

from repro.geometry import Rect
from repro.movebounds import EXCLUSIVE, MoveBoundSet, decompose_regions
from repro.viz import render_regions


def main() -> None:
    die = Rect(0, 0, 100, 100)
    bounds = MoveBoundSet(die)
    bounds.add_rects("N", [Rect(0, 60, 30, 100)], EXCLUSIVE)
    bounds.add_rects("M", [Rect(40, 20, 90, 80)])
    bounds.add_rects("L", [Rect(50, 30, 70, 60)])
    bounds.normalize()

    decomposition = decompose_regions(die, bounds)
    decomposition.check_partition()

    print(__doc__)
    print(render_regions(decomposition, width=72, height=26))
    print()
    print(f"{'region signature':34} {'area':>8} {'capacity':>9}")
    for region in decomposition:
        sig = "{" + ", ".join(sorted(region.signature)) + "}"
        print(
            f"{sig:34} {region.area.area:8.0f} "
            f"{region.capacity(0.97):9.1f}"
        )
    print(
        "\nEvery region is movebound-pure (Definition 2): for each "
        "movebound it lies entirely inside or outside its area.  "
        "Cells of L may only use the {L, M, default} region; cells of "
        "M may use both M-regions; unconstrained cells use everything "
        "except N's area (N is exclusive)."
    )


if __name__ == "__main__":
    main()
