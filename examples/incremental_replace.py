"""Incremental placement: a transactional ECO on a finished placement.

The paper (§IV) notes that recursive partitioning approaches cannot do
incremental placements without restarting from scratch, while FBP
"guarantees a feasible partitioning ... for any given placement".  The
:class:`repro.eco.EcoEngine` builds an ACID transaction around that
property (docs/incremental.md):

1. place a design without constraints,
2. a floorplan change arrives as a :class:`PlacementDelta`: a
   hierarchy block is assigned an inclusive movebound in a corner
   where few of its cells currently are,
3. ``engine.apply(delta)`` validates the delta (structure + Theorem-2
   feasibility), solves scoped to the invalidation frontier, verifies
   (containment, legality, bounded HPWL drift), and commits to a
   checksummed journal — a crash at any instant recovers to the pre-
   or post-delta placement, never a torn hybrid,
4. re-applying the same delta replays the committed transaction from
   the journal bit-identically instead of re-solving.

Run:  python examples/incremental_replace.py
"""

import tempfile

import numpy as np

from repro.eco import EcoEngine, PlacementDelta
from repro.place import BonnPlaceFBP
from repro.workloads import NetlistSpec, generate_netlist


def main() -> None:
    print(__doc__)
    spec = NetlistSpec("incr", num_cells=400, utilization=0.45, num_pads=16)
    netlist, _logical = generate_netlist(spec, seed=21)

    placer = BonnPlaceFBP()
    result = placer.place(netlist, None)
    print(f"initial placement: HPWL={result.hpwl:.1f}, "
          f"{result.legality.summary()}")
    baseline = netlist.snapshot()

    # --- the change request as a canonical delta ----------------------
    die = netlist.die
    corner = [
        die.x_lo, die.y_lo,
        die.x_lo + 0.35 * die.width, die.y_lo + 0.35 * die.height,
    ]
    block_cells = [c.name for c in netlist.cells[:90] if not c.fixed]
    delta = PlacementDelta.from_dict({
        "movebounds": [
            {"name": "blockA", "rects": [corner], "cells": block_cells}
        ]
    })
    print(
        f"\nchange: {len(block_cells)} cells assigned to new movebound "
        f"'blockA' in the lower-left corner "
        f"(delta digest {delta.digest()[:12]}...)"
    )

    with tempfile.TemporaryDirectory(prefix="eco_example_") as run_dir:
        engine = EcoEngine(netlist, placer=placer, run_dir=run_dir)

        # --- transactional apply: validate, solve, verify, commit -----
        eco = engine.apply(delta)
        print(
            f"\ntxn {eco.txn_seq} committed in mode '{eco.mode}': "
            f"HPWL {eco.hpwl_pre:.1f} -> {eco.hpwl_post:.1f}, "
            f"{eco.frontier_windows} frontier windows, "
            f"{eco.eco_seconds:.2f}s"
        )
        print(result_line(engine, block_cells))

        moved = (np.abs(netlist.x - baseline.x)
                 + np.abs(netlist.y - baseline.y))
        others = np.array(
            [c.index for c in netlist.cells
             if not c.fixed and c.movebound is None]
        )
        print(
            f"unconstrained cells: mean displacement "
            f"{moved[others].mean():.2f}, median "
            f"{np.median(moved[others]):.2f} "
            f"(die is {die.width:.0f} wide) — the rest of the design "
            "stays largely in place while blockA's cells migrate into "
            "their bound."
        )

        # --- idempotent replay: same delta on the same base -----------
        netlist.restore(baseline)
        for name in block_cells:
            netlist.cells[netlist.cell_index(name)].movebound = None
        engine.bounds = type(engine.bounds)(die)
        again = engine.apply(delta)
        print(
            f"\nre-apply after a (simulated) crash: mode "
            f"'{again.mode}' — the journal recognized the committed "
            f"(digest, base placement) pair and restored txn "
            f"{again.txn_seq} bit-identically without re-solving "
            f"(post sha {again.post_sha[:12]}...)."
        )


def result_line(engine: EcoEngine, block_cells) -> str:
    netlist = engine.netlist
    area = engine.bounds.get("blockA").area
    inside = sum(
        1 for name in block_cells
        if area.contains_point(
            netlist.x[netlist.cell_index(name)],
            netlist.y[netlist.cell_index(name)],
        )
    )
    return f"blockA cells inside their bound: {inside}/{len(block_cells)}"


if __name__ == "__main__":
    main()
