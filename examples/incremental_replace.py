"""Incremental placement: adding movebounds to a finished placement.

The paper (§IV) notes that recursive partitioning approaches cannot do
incremental placements without restarting from scratch, while FBP
"guarantees a feasible partitioning ... for any given placement".

This example:

1. places a design without constraints,
2. then a floorplan change arrives: a hierarchy block is assigned an
   inclusive movebound in a corner where few of its cells currently are,
3. re-runs FBP *from the existing placement* (no from-scratch restart)
   and measures how far the unaffected cells moved.

Run:  python examples/incremental_replace.py
"""

import numpy as np

from repro.geometry import Rect
from repro.movebounds import MoveBoundSet
from repro.place import BonnPlaceFBP
from repro.workloads import NetlistSpec, generate_netlist


def main() -> None:
    print(__doc__)
    spec = NetlistSpec("incr", num_cells=400, utilization=0.45, num_pads=16)
    netlist, _logical = generate_netlist(spec, seed=21)
    free_bounds = MoveBoundSet(netlist.die)

    result = BonnPlaceFBP().place(netlist, free_bounds)
    print(f"initial placement: HPWL={result.hpwl:.1f}, "
          f"{result.legality.summary()}")
    baseline = netlist.snapshot()

    # --- the change request -------------------------------------------
    die = netlist.die
    corner = Rect(
        die.x_lo, die.y_lo,
        die.x_lo + 0.35 * die.width, die.y_lo + 0.35 * die.height,
    )
    bounds = MoveBoundSet(die)
    bounds.add_rects("blockA", [corner])
    block_cells = [c.index for c in netlist.cells[:90] if not c.fixed]
    for i in block_cells:
        netlist.cells[i].movebound = "blockA"
    inside = sum(
        1 for i in block_cells
        if corner.contains_point(netlist.x[i], netlist.y[i])
    )
    print(
        f"\nchange: {len(block_cells)} cells assigned to movebound "
        f"'blockA' in the lower-left corner; only {inside} of them are "
        "currently inside it"
    )

    # --- incremental re-place (start = current placement) --------------
    result2 = BonnPlaceFBP().place(netlist, bounds)
    print(
        f"\nincremental re-place: HPWL={result2.hpwl:.1f}, "
        f"{result2.legality.summary()}"
    )

    moved = np.abs(netlist.x - baseline.x) + np.abs(netlist.y - baseline.y)
    others = np.array(
        [c.index for c in netlist.cells
         if not c.fixed and c.movebound is None]
    )
    print(
        f"unconstrained cells: mean displacement "
        f"{moved[others].mean():.2f}, median "
        f"{np.median(moved[others]):.2f} "
        f"(die is {die.width:.0f} wide) — the rest of the design "
        "stays largely in place while blockA's cells migrate into "
        "their bound."
    )
    in_bound = sum(
        1 for i in block_cells
        if corner.contains_point(netlist.x[i], netlist.y[i])
    )
    print(f"blockA cells inside their bound: {in_bound}/{len(block_cells)}")


if __name__ == "__main__":
    main()
