"""SoC hierarchy flattening: the paper's (F) scenario end to end.

Paper §I: movebounds are "a compromise between flat and hierarchical
design approaches: movebounds allow to reveal the interior of
hierarchical units (SoC, RLMs) but the overall hierarchical structure
can be kept."

This example builds an SoC module tree, flattens it at two different
cut depths, places each with BonnPlaceFBP, and compares against a
fully flat placement — showing the wirelength cost of keeping more
structure.

Run:  python examples/hierarchy_flattening.py
"""

from repro.hier import Module, flatten_to_movebounds
from repro.movebounds import MoveBoundSet
from repro.place import BonnPlaceFBP
from repro.viz import render_placement
from repro.workloads import NetlistSpec, generate_netlist


def build_design():
    spec = NetlistSpec("soc", num_cells=600, utilization=0.45,
                       num_pads=16)
    netlist, logical = generate_netlist(spec, seed=13)
    # real modules are logically cohesive: carve them out of logical
    # space (the generator wires logically-near cells together), so
    # intra-module nets dominate like in an actual SoC
    quads = {"core0": [], "core1": [], "dsp": [], "io": []}
    for i, (lx, ly) in enumerate(logical):
        if lx < 0.5 and ly < 0.5:
            quads["core0"].append(i)
        elif lx >= 0.5 and ly < 0.5:
            quads["core1"].append(i)
        elif lx < 0.5:
            quads["dsp"].append(i)
        else:
            quads["io"].append(i)
    cpu = Module("cpu", children=[
        Module("core0", cells=quads["core0"]),
        Module("core1", cells=quads["core1"]),
    ])
    soc = Module("soc", children=[
        cpu,
        Module("dsp", cells=quads["dsp"]),
        Module("io", cells=quads["io"]),
    ])
    return netlist, soc


def place_variant(label, depth):
    netlist, soc = build_design()
    if depth is None:
        bounds = MoveBoundSet(netlist.die)
        members = {}
    else:
        result = flatten_to_movebounds(netlist, soc, depth=depth,
                                       fill=0.55)
        bounds, members = result.bounds, result.members
    res = BonnPlaceFBP().place(netlist, bounds)
    print(
        f"{label:28} HPWL={res.hpwl:8.1f}  "
        f"legal={res.legality.is_legal}  "
        f"bounds={sorted(bounds.names())}"
    )
    return netlist, bounds


def main() -> None:
    print(__doc__)
    place_variant("fully flat (no hierarchy)", None)
    place_variant("cut at depth 1 (cpu/dsp/io)", 1)
    netlist, bounds = place_variant("cut at depth 2 (cores split)", 2)
    print(
        "\nWith logically cohesive modules, keeping the hierarchy as "
        "movebounds costs little — here it even improves wirelength, "
        "since the connectivity-aware floorplan gives the placer good "
        "global structure — while every RLM stays a contiguous block, "
        "reusable for hierarchical timing/ECO flows.  That is the "
        "paper's 'compromise between flat and hierarchical design'."
    )
    print("\nplacement with depth-2 movebounds outlined:")
    print(render_placement(netlist, bounds, width=72, height=22))


if __name__ == "__main__":
    main()
