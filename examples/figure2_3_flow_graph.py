"""Figures 2 and 3 of the paper: the FBP MinCostFlow graph.

Figure 2 shows the intra-window edge sets for one movebound M in one
window: E^cr (cell group -> regions), E^tt (transit <-> transit),
E^ct (cell group -> transits) and E^tr (transit -> regions).
Figure 3 shows the external edges connecting facing transit nodes of
adjacent windows.

This example builds a small model (2x2 windows, one movebound),
enumerates the edge sets per window, solves the flow, and prints the
flow-carrying external arcs.

Run:  python examples/figure2_3_flow_graph.py
"""

from collections import Counter

import numpy as np

from repro.fbp import build_fbp_model
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.netlist import Netlist, Pin
from repro.viz import render_flow_graph


def build_instance():
    die = Rect(0, 0, 40, 40)
    netlist = Netlist(die, row_height=1.0, site_width=0.5, name="fig23")
    bounds = MoveBoundSet(die)
    bounds.add_rects("M", [Rect(0, 0, 40, 40)])  # M spans all windows
    rng = np.random.default_rng(0)
    # all cells of M crowd window (0, 0): flow must leave over transits
    for i in range(60):
        netlist.add_cell(
            f"m{i}", 2.0, 1.0,
            x=float(rng.uniform(1, 18)), y=float(rng.uniform(1, 18)),
            movebound="M",
        )
    netlist.finalize()
    for j in range(0, 58, 2):
        netlist.add_net(f"n{j}", [Pin(j), Pin(j + 1)])
    return netlist, bounds


def main() -> None:
    print(__doc__)
    netlist, bounds = build_instance()
    decomposition = decompose_regions(netlist.die, bounds)
    grid = Grid(netlist.die, 2, 2)
    grid.build_regions(decomposition)
    model = build_fbp_model(netlist, bounds, grid, density_target=0.8)

    # --- Figure 2: intra-window edge sets ------------------------------
    kinds = Counter()
    for arc in model.problem.arcs:
        tail, head = arc.tail, arc.head
        if tail[0] == "cg" and head[0] == "r":
            kinds["E^cr (cell group -> region)"] += 1
        elif tail[0] == "cg" and head[0] == "t":
            kinds["E^ct (cell group -> transit)"] += 1
        elif tail[0] == "t" and head[0] == "t":
            if tail[2] == head[2]:  # same window
                kinds["E^tt (transit -> transit, same window)"] += 1
            else:
                kinds["E^ext (external, facing transits)"] += 1
        elif tail[0] == "t" and head[0] == "r":
            kinds["E^tr (transit -> region)"] += 1
    print("edge sets of the model (Figure 2 + Figure 3):")
    for kind, count in sorted(kinds.items()):
        print(f"  {kind:45} x{count}")

    # --- Figure 3: external arcs carrying flow -------------------------
    result = model.solve()
    print(f"\nMinCostFlow feasible: {result.feasible} "
          f"(Theorem 3), cost {result.cost:.1f}")
    print()
    print(render_flow_graph(model, result))
    print(
        "\nAll of M's cells start in window (0,0); the flow routes the "
        "surplus over the window boundaries (external arcs) into the "
        "neighbor windows' region nodes."
    )


if __name__ == "__main__":
    main()
