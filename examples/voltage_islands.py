"""Domain scenario: voltage islands as exclusive movebounds.

The paper's introduction motivates movebounds with, among others,
placement of different voltage domains [10]: cells of a low-voltage
domain must live inside the island (so they can be powered by its
rail), and no foreign cell may sit there (it could not be powered).
That is exactly an *exclusive* movebound.

This example builds a design with two voltage islands, places it with
BonnPlaceFBP, verifies isolation, and shows what the naive baseline
does instead.

Run:  python examples/voltage_islands.py
"""

from repro.legalize import check_legality
from repro.movebounds import EXCLUSIVE
from repro.place import BonnPlaceFBP, RQLPlacer
from repro.viz import render_placement
from repro.workloads import (
    MoveBoundSpec,
    NetlistSpec,
    attach_movebounds,
    generate_netlist,
)


def main() -> None:
    print(__doc__)
    spec = NetlistSpec("vislands", num_cells=500, utilization=0.45,
                       num_pads=16)
    netlist, logical = generate_netlist(spec, seed=11)
    bounds = attach_movebounds(
        netlist,
        logical,
        [
            MoveBoundSpec("vdd_low", 0.12, density=0.6, kind=EXCLUSIVE),
            MoveBoundSpec("vdd_high", 0.10, density=0.6, kind=EXCLUSIVE,
                          shape="L"),
        ],
        seed=11,
    )
    print(
        f"{netlist.num_cells} cells; "
        f"{sum(1 for c in netlist.cells if c.movebound)} in voltage islands"
    )

    snapshot = netlist.snapshot()
    result = BonnPlaceFBP().place(netlist, bounds)
    print(
        f"\nBonnPlaceFBP: HPWL={result.hpwl:.1f}, "
        f"legality={result.legality.summary()}"
    )
    print(render_placement(netlist, bounds, width=72, height=22))

    # isolation audit: count foreign cells inside each island
    for bound in bounds:
        foreign = 0
        for cell in netlist.cells:
            if cell.fixed or cell.movebound == bound.name:
                continue
            rect = netlist.cell_rect(cell.index)
            if bound.area.intersection_area(rect) > 1e-9:
                foreign += 1
        print(f"island {bound.name}: foreign cells inside = {foreign}")

    netlist.restore(snapshot)
    baseline = RQLPlacer().place(netlist, bounds)
    print(
        f"\nRQL-style baseline: HPWL={baseline.hpwl:.1f}, "
        f"movebound violations={baseline.violations} — cells on the "
        "wrong rail would not be functional silicon."
    )


if __name__ == "__main__":
    main()
