"""Congestion-driven re-placement: inflation + incremental FBP.

Paper §IV, on why recursive partitioning falls short: feasibility in a
window "is not always true due to ... increased cell sizes from
congestion avoidance".  The practical loop this refers to:

1. place;
2. estimate routing congestion (pin density here);
3. inflate cells in hot spots to reserve routing whitespace;
4. re-partition — the inflated design may be locally infeasible for a
   recursive scheme, but FBP's global flow redistributes and stays
   feasible for any starting placement.

Run:  python examples/congestion_rebalance.py
"""

import numpy as np

from repro.congestion import congestion_map, inflate_cells
from repro.fbp import fbp_partition
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.place import BonnPlaceFBP, BonnPlaceOptions
from repro.viz import render_placement
from repro.workloads import NetlistSpec, generate_netlist


def hotspot_report(netlist, bins=8):
    cmap = congestion_map(netlist, bins)
    hot = int((cmap > 1.4).sum())
    return cmap.max(), hot


def main() -> None:
    print(__doc__)
    spec = NetlistSpec("congest", num_cells=500, utilization=0.60,
                       num_pads=12)
    netlist, _ = generate_netlist(spec, seed=9)
    bounds = MoveBoundSet(netlist.die)

    BonnPlaceFBP(BonnPlaceOptions(legalize=False)).place(netlist, bounds)
    peak, hot = hotspot_report(netlist)
    print(f"after placement: peak congestion {peak:.2f}x average, "
          f"{hot} hot bins")

    inflation = inflate_cells(
        netlist, threshold=1.2, strength=0.5, max_factor=1.8, bins=8
    )
    util = netlist.movable_area() / (
        netlist.die.area - netlist.blockages.area
    )
    print(
        f"inflated {inflation.inflated_cells} cells "
        f"(+{inflation.added_area:.0f} area, max factor "
        f"{inflation.max_factor:.2f}); utilization now {100 * util:.0f}%"
    )

    decomposition = decompose_regions(
        netlist.die, bounds, netlist.blockages
    )
    grid = Grid(netlist.die, 8, 8)
    grid.build_regions(decomposition)
    report = fbp_partition(
        netlist, bounds, grid, density_target=0.97
    )
    print(
        f"\nincremental FBP on the inflated design: feasible = "
        f"{report.feasible} (Theorem 3 held even though local windows "
        "became overfull)"
    )
    real = report.realization
    print(
        f"realized {real.arcs_realized} external arcs, moved "
        f"{real.moved_area:.0f} inflated area units; max window "
        f"overflow {real.max_overflow:.2f} (almost-integral bound)"
    )
    peak2, hot2 = hotspot_report(netlist)
    print(f"after rebalancing: peak congestion {peak2:.2f}x, "
          f"{hot2} hot bins")
    print("\nplacement after congestion rebalancing:")
    print(render_placement(netlist, width=70, height=20))


if __name__ == "__main__":
    main()
