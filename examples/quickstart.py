"""Quickstart: generate an instance with movebounds, place it with
BonnPlaceFBP, and inspect the result.

Run:  python examples/quickstart.py
"""

from repro.legalize import check_legality
from repro.place import BonnPlaceFBP, RQLPlacer
from repro.viz import render_placement
from repro.workloads import movebound_instance


def main() -> None:
    # A Table III suite instance: "Rabe" with 2 inclusive movebounds.
    inst = movebound_instance("Rabe", seed=7)
    netlist, bounds = inst.netlist, inst.bounds
    print(
        f"instance {inst.name}: {netlist.num_cells} cells, "
        f"{netlist.num_nets} nets, {len(bounds)} movebounds"
    )

    snapshot = netlist.snapshot()

    # --- the paper's placer -------------------------------------------
    placer = BonnPlaceFBP()
    result = placer.place(netlist, bounds)
    print(
        f"\nBonnPlaceFBP: HPWL={result.hpwl:.1f} "
        f"(global {result.global_seconds:.1f}s + "
        f"legalization {result.legal_seconds:.1f}s)"
    )
    print(f"legality: {result.legality.summary()}")
    print("\nplacement density (movebound areas outlined):")
    print(render_placement(netlist, bounds, width=72, height=24))

    # --- the RQL-style baseline for comparison ------------------------
    netlist.restore(snapshot)
    baseline = RQLPlacer().place(netlist, bounds)
    print(
        f"\nRQL-style baseline: HPWL={baseline.hpwl:.1f}, "
        f"movebound violations={baseline.violations}"
    )
    print(
        "\nThe flow-based placer is legal by construction; the "
        "force-directed baseline ignores region capacities and "
        "violates the movebounds (cf. paper Tables IV/V)."
    )


if __name__ == "__main__":
    main()
