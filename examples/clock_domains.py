"""Clock domains as movebounds (paper §I, [14]).

Clock-tree synthesis wants each clock domain geometrically compact:
the tree's wirelength, insertion delay and skew all grow with the
domain's spread.  Movebounds deliver exactly that: every domain's
sequential cells are constrained to one contiguous region.

This example places a three-domain design with and without domain
movebounds and compares each domain's spread (bounding-box
half-perimeter of its cells) and the resulting total wirelength.

Run:  python examples/clock_domains.py
"""

import numpy as np

from repro.movebounds import MoveBoundSet
from repro.place import BonnPlaceFBP
from repro.workloads import (
    MoveBoundSpec,
    NetlistSpec,
    attach_movebounds,
    generate_netlist,
)


def domain_spread(netlist, members):
    xs = netlist.x[members]
    ys = netlist.y[members]
    return float(np.ptp(xs) + np.ptp(ys))


def main() -> None:
    print(__doc__)
    spec = NetlistSpec("clocks", num_cells=450, utilization=0.5,
                       num_pads=12)

    # --- unconstrained run -------------------------------------------
    netlist, logical = generate_netlist(spec, seed=23)
    domains = {
        f"clk{d}": [i for i in range(450) if i % 3 == d]
        for d in range(3)
    }
    free_bounds = MoveBoundSet(netlist.die)
    BonnPlaceFBP().place(netlist, free_bounds)
    print(f"{'domain':8} {'free spread':>12} {'bounded spread':>15}")
    free_spread = {
        name: domain_spread(netlist, cells)
        for name, cells in domains.items()
    }
    free_hpwl = netlist.hpwl()

    # --- with clock-domain movebounds --------------------------------
    netlist2, logical2 = generate_netlist(spec, seed=23)
    bounds = attach_movebounds(
        netlist2,
        logical2,
        [
            MoveBoundSpec("clk0", 1 / 3, density=0.75,
                          from_flattening=False),
            MoveBoundSpec("clk1", 1 / 3, density=0.75,
                          from_flattening=False),
            MoveBoundSpec("clk2", 1 / 3, density=0.75,
                          from_flattening=False),
        ],
        seed=23,
    )
    result = BonnPlaceFBP().place(netlist2, bounds)
    for name in sorted(domains):
        members2 = [
            c.index for c in netlist2.cells if c.movebound == name
        ]
        print(
            f"{name:8} {free_spread[name]:12.1f} "
            f"{domain_spread(netlist2, np.array(members2)):15.1f}"
        )
    print(f"\nHPWL free   : {free_hpwl:9.1f}")
    print(f"HPWL bounded: {result.hpwl:9.1f} "
          f"(legal={result.legality.is_legal})")
    print(
        "\nEach domain's spread shrinks to its bound's extent — the "
        "clock tree for each domain stays short and skew-controllable — "
        "at a quantified wirelength cost, the §I trade the paper's "
        "movebounds make navigable."
    )


if __name__ == "__main__":
    main()
