"""Figure 4 of the paper: realization of the flow, step by step.

(1) initial solution -> (2) pick an external flow arc -> (3) coarse
window around it -> (4) local QP with outside cells fixed ->
(5) partitioning in the coarse window -> new solution.

This example instruments `realize_flow` on an overloaded instance and
prints the per-arc shipping decisions plus before/after placement
pictures.

Run:  python examples/figure4_realization.py
"""

import numpy as np

from repro.fbp import build_fbp_model
from repro.fbp.realization import (
    cancel_external_cycles,
    realize_flow,
    topological_arc_order,
)
from repro.geometry import Rect
from repro.grid import Grid
from repro.movebounds import MoveBoundSet, decompose_regions
from repro.netlist import Netlist, Pin
from repro.viz import render_placement


def build_instance():
    die = Rect(0, 0, 60, 60)
    netlist = Netlist(die, row_height=1.0, site_width=0.5, name="fig4")
    rng = np.random.default_rng(3)
    num_cells = 400  # ~800 area units piled onto one 400-unit window
    for i in range(num_cells):
        netlist.add_cell(
            f"c{i}", 2.0, 1.0,
            x=float(rng.uniform(1, 19)), y=float(rng.uniform(1, 19)),
        )
    netlist.finalize()
    for j in range(300):
        a, b = rng.choice(num_cells, 2, replace=False)
        netlist.add_net(f"n{j}", [Pin(int(a)), Pin(int(b))])
    return netlist


def main() -> None:
    print(__doc__)
    netlist = build_instance()
    bounds = MoveBoundSet(netlist.die)
    decomposition = decompose_regions(netlist.die, bounds)
    grid = Grid(netlist.die, 3, 3)
    grid.build_regions(decomposition)

    print("(1) initial solution — everything crowded bottom-left:")
    print(render_placement(netlist, width=60, height=18))

    model = build_fbp_model(netlist, bounds, grid, density_target=0.8)
    result = model.solve()
    assert result.feasible

    flows = cancel_external_cycles(model.external_flows(result))
    ordered = topological_arc_order(flows)
    print(f"\n(2)+(3) {len(ordered)} external arcs in topological order; "
          "each realized over a 2x3/3x2 coarse window:")
    for arc, f in ordered:
        v = grid.windows[arc.src_window]
        w = grid.windows[arc.dst_window]
        block = grid.coarse_block(v, w)
        print(
            f"  ({v.ix},{v.iy}) -{arc.direction}-> ({w.ix},{w.iy}) "
            f"flow={f:6.1f}  coarse window: "
            f"{len(block)} windows {sorted((b.ix, b.iy) for b in block)}"
        )

    out = realize_flow(model, result, run_local_qp=True)
    print(
        f"\n(4)+(5) realized {out.arcs_realized} arcs with "
        f"{out.local_qp_calls} local QPs; moved {out.moved_area:.1f} "
        f"area units (rounding slack {out.rounding_error:.2f})"
    )
    print("\nnew solution — spread across the windows, capacities met:")
    print(render_placement(netlist, width=60, height=18))


if __name__ == "__main__":
    main()
