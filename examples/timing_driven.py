"""Timing-driven placement with movebounds.

Paper §I motivates movebounds with "particular timing and routability
issues [18]": timing-critical blocks get position constraints, and the
placer must honor them while optimizing weighted wirelength.

This example runs the classic timing-driven loop (place -> static
timing analysis -> criticality net weighting -> re-place) on a design
whose timing-critical region is additionally pinned by a movebound,
and reports critical-path and HPWL before/after.

Run:  python examples/timing_driven.py
"""

from repro.geometry import Rect
from repro.movebounds import MoveBoundSet
from repro.timing import analyze_timing, timing_driven_place
from repro.workloads import NetlistSpec, generate_netlist


def main() -> None:
    print(__doc__)
    spec = NetlistSpec("tdrv", num_cells=400, utilization=0.5,
                       num_pads=16)
    netlist, logical = generate_netlist(spec, seed=17)

    # pin the timing-critical block (logically central cells, which the
    # generator wires most densely) into a movebound near the die center
    die = netlist.die
    cx, cy = die.center
    side = die.width * 0.38
    bound_rect = Rect(cx - side / 2, cy - side / 2,
                      cx + side / 2, cy + side / 2)
    bounds = MoveBoundSet(die)
    bounds.add_rects("critical_block", [bound_rect])
    pinned = 0
    for i, (lx, ly) in enumerate(logical):
        if abs(lx - 0.5) < 0.15 and abs(ly - 0.5) < 0.15:
            netlist.cells[i].movebound = "critical_block"
            pinned += 1
    print(f"pinned {pinned} timing-critical cells into a central "
          f"movebound\n")

    first, final = timing_driven_place(
        netlist, bounds, iterations=3, alpha=4.0
    )
    hpwl = netlist.hpwl()
    print(f"critical path before : {first.critical_path:9.1f}")
    print(f"critical path after  : {final.critical_path:9.1f}  "
          f"({100 * (1 - final.critical_path / first.critical_path):+.1f}%"
          " improvement)")
    print(f"final HPWL           : {hpwl:9.1f}")
    print(f"cycle arcs broken    : {final.broken_arcs}")
    crit = final.critical_nets(0.85)
    print(f"nets still >85% critical: {len(crit)}")
    print(
        "\nThe quadratic placer absorbs timing weights without any "
        "change to the FBP machinery — weighted HPWL is its native "
        "objective — and the movebound is honored throughout."
    )
    violations = bounds.violations(netlist)
    print(f"movebound violations after the loop: {len(violations)}")


if __name__ == "__main__":
    main()
